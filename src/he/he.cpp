#include "he/he.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/parallel.h"

namespace primer {

// ---------------------------------------------------------------------------
// KeyGenerator
// ---------------------------------------------------------------------------

KeyGenerator::KeyGenerator(const HeContext& ctx, Rng& rng)
    : ctx_(ctx), rng_(rng) {
  RnsPoly s = ctx_.sample_ternary(rng_);
  ctx_.to_ntt(s);
  sk_.s = std::move(s);
}

PublicKey KeyGenerator::make_public_key() {
  PublicKey pk;
  RnsPoly a = ctx_.sample_uniform(rng_);
  ctx_.to_ntt(a);
  RnsPoly e = ctx_.sample_error(rng_);
  ctx_.to_ntt(e);
  ctx_.scalar_multiply_inplace(e, ctx_.t());
  // b = -(a*s + t*e)
  RnsPoly b = ctx_.multiply(a, sk_.s);
  ctx_.add_inplace(b, e);
  ctx_.negate_inplace(b);
  pk.a = std::move(a);
  pk.b = std::move(b);
  return pk;
}

KSwitchKey KeyGenerator::make_kswitch_key(const RnsPoly& target_ntt,
                                          std::uint32_t decomp_bits) {
  // One key pair per gadget digit (i, d):
  //   b = -(a*s + t*e) + 2^{shift} * P_i * target
  // where P_i is 1 mod q_i and 0 mod q_j — so the target term touches only
  // RNS component i, scaled by the digit's base power.
  KSwitchKey key;
  key.decomp_bits = decomp_bits;
  for (const auto& d : ctx_.decomp_layout(decomp_bits)) {
    RnsPoly a = ctx_.sample_uniform(rng_);
    ctx_.to_ntt(a);
    RnsPoly e = ctx_.sample_error(rng_);
    ctx_.to_ntt(e);
    ctx_.scalar_multiply_inplace(e, ctx_.t());
    RnsPoly b = ctx_.multiply(a, sk_.s);
    ctx_.add_inplace(b, e);
    ctx_.negate_inplace(b);
    const u64 qi = ctx_.q(d.limb);
    const u64 scale = d.shift == 0 ? 1 : (u64{1} << d.shift) % qi;
    u64* bl = b.limb(d.limb);
    const u64* tl = target_ntt.limb(d.limb);
    for (std::size_t j = 0; j < ctx_.degree(); ++j) {
      bl[j] = add_mod(bl[j], mul_mod(scale, tl[j], qi), qi);
    }
    key.b_shoup.push_back(shoup_table(b));
    key.a_shoup.push_back(shoup_table(a));
    key.a.push_back(std::move(a));
    key.b.push_back(std::move(b));
  }
  return key;
}

RnsPoly compute_shoup_table(const HeContext& ctx, const RnsPoly& key_part) {
  RnsPoly out(key_part.rns_size(), key_part.degree(), key_part.ntt_form);
  for (std::size_t j = 0; j < key_part.rns_size(); ++j) {
    const u64 qj = ctx.q(j);
    // The quotient scale follows the kernel set that will consume this
    // table in shoup_mul_acc_lazy2 (64-bit convention for scalar/avx2/
    // avx512, 52-bit for avx512ifma).
    const unsigned shift = ctx.kernels(j).shoup_shift;
    const u64* src = key_part.limb(j);
    u64* dst = out.limb(j);
    for (std::size_t x = 0; x < key_part.degree(); ++x) {
      dst[x] = static_cast<u64>((static_cast<u128>(src[x]) << shift) / qj);
    }
  }
  return out;
}

RnsPoly KeyGenerator::shoup_table(const RnsPoly& key_part) const {
  return compute_shoup_table(ctx_, key_part);
}

RelinKey KeyGenerator::make_relin_key() {
  RelinKey rk;
  const RnsPoly s2 = ctx_.multiply(sk_.s, sk_.s);
  // Full-width CRT digits: relinearization follows a ciphertext multiply
  // whose noise already dwarfs the key-switch term, so the cheaper layout
  // (k digits instead of ~2k) wins.
  rk.key = make_kswitch_key(s2, 0);
  return rk;
}

void KeyGenerator::add_galois_key(GaloisKeys& keys, u64 elt) {
  if (keys.has(elt)) return;
  // Target key is s(x^elt).
  RnsPoly s_coeff = sk_.s;
  ctx_.to_coeff(s_coeff);
  RnsPoly s_gal;
  ctx_.apply_galois_coeff(s_coeff, elt, s_gal);
  ctx_.to_ntt(s_gal);
  // Sub-digit keys: rotated ciphertexts get multiplied by plaintext masks
  // in the BSGS matmuls, so the rotation's additive key-switch noise must
  // stay ~t*n below q — half-width digits buy that headroom.
  keys.keys.emplace(elt, make_kswitch_key(s_gal, ctx_.galois_decomp_bits()));
}

GaloisKeys KeyGenerator::make_galois_keys(const std::vector<int>& steps,
                                          bool include_row_swap) {
  GaloisKeys gk;
  for (int s : steps) add_galois_key(gk, ctx_.galois_elt_from_step(s));
  if (include_row_swap) add_galois_key(gk, ctx_.galois_elt_row_swap());
  return gk;
}

// ---------------------------------------------------------------------------
// Encryptor
// ---------------------------------------------------------------------------

Encryptor::Encryptor(const HeContext& ctx, const SecretKey& sk, Rng& rng)
    : ctx_(ctx), sk_(&sk), rng_(rng) {}

Encryptor::Encryptor(const HeContext& ctx, const PublicKey& pk, Rng& rng)
    : ctx_(ctx), pk_(&pk), rng_(rng) {}

Ciphertext Encryptor::encrypt_zero() const {
  Plaintext zero;
  zero.coeffs.assign(ctx_.degree(), 0);
  return encrypt(zero);
}

Ciphertext Encryptor::encrypt(const Plaintext& pt) const {
  ++counters_.encryptions;
  RnsPoly m = ctx_.lift_plaintext(pt);
  ctx_.to_ntt(m);

  Ciphertext ct;
  if (sk_ != nullptr) {
    // Symmetric: c1 = a (uniform), c0 = -(a*s) + t*e + m.
    RnsPoly a = ctx_.sample_uniform(rng_);
    ctx_.to_ntt(a);
    RnsPoly e = ctx_.sample_error(rng_);
    ctx_.to_ntt(e);
    ctx_.scalar_multiply_inplace(e, ctx_.t());
    RnsPoly c0 = ctx_.multiply(a, sk_->s);
    ctx_.negate_inplace(c0);
    ctx_.add_inplace(c0, e);
    ctx_.add_inplace(c0, m);
    ct.parts.push_back(std::move(c0));
    ct.parts.push_back(std::move(a));
    // |t*e| <= t * eta
    ct.noise_log2 =
        std::log2(static_cast<double>(ctx_.t())) + std::log2(4.0);
  } else {
    // Asymmetric: u ternary; c0 = b*u + t*e0 + m, c1 = a*u + t*e1.
    RnsPoly u = ctx_.sample_ternary(rng_);
    ctx_.to_ntt(u);
    RnsPoly e0 = ctx_.sample_error(rng_);
    ctx_.to_ntt(e0);
    ctx_.scalar_multiply_inplace(e0, ctx_.t());
    RnsPoly e1 = ctx_.sample_error(rng_);
    ctx_.to_ntt(e1);
    ctx_.scalar_multiply_inplace(e1, ctx_.t());

    RnsPoly c0 = ctx_.multiply(pk_->b, u);
    ctx_.add_inplace(c0, e0);
    ctx_.add_inplace(c0, m);
    RnsPoly c1 = ctx_.multiply(pk_->a, u);
    ctx_.add_inplace(c1, e1);
    ct.parts.push_back(std::move(c0));
    ct.parts.push_back(std::move(c1));
    // |t*(e_pk*u + e0 + e1*s)| ~ t * 2n * eta
    ct.noise_log2 = std::log2(static_cast<double>(ctx_.t())) +
                    std::log2(4.0 * static_cast<double>(ctx_.degree()));
  }
  return ct;
}

// ---------------------------------------------------------------------------
// Decryptor
// ---------------------------------------------------------------------------

Decryptor::Decryptor(const HeContext& ctx, const SecretKey& sk)
    : ctx_(ctx), sk_(sk) {
  const char* v = std::getenv("PRIMER_NOISE_FLOOR_BITS");
  if (v != nullptr && *v != '\0') {
    try {
      floor_bits_ = std::max(0.0, std::stod(v));
    } catch (const std::exception&) {
      floor_bits_ = 0.0;
    }
  }
}

RnsPoly Decryptor::dot_with_key_powers(const Ciphertext& ct) const {
  if (ct.empty()) throw std::invalid_argument("decrypt: empty ciphertext");
  RnsPoly acc = ct.parts[0];
  if (!acc.ntt_form) ctx_.to_ntt(acc);
  RnsPoly s_power = sk_.s;
  for (std::size_t i = 1; i < ct.parts.size(); ++i) {
    RnsPoly part = ct.parts[i];
    if (!part.ntt_form) ctx_.to_ntt(part);
    ctx_.multiply_inplace(part, s_power);
    ctx_.add_inplace(acc, part);
    if (i + 1 < ct.parts.size()) {
      s_power = ctx_.multiply(s_power, sk_.s);
    }
  }
  ctx_.to_coeff(acc);
  return acc;
}

Plaintext Decryptor::decrypt(const Ciphertext& ct) const {
  double budget = estimated_budget(ct);
  if (budget <= floor_bits_) {
    // The tracked estimate is a worst-case screen and can exhaust on
    // profiles whose q is deliberately undersized (kTest2048) while the
    // actual noise is still fine.  Before refusing, measure the ground
    // truth; the extra decryption pass is only paid on this rare path.
    // A wrapped ciphertext measures within ~0.001 bits of the cliff (its
    // noise is uniform mod q), so anything under 0.01 bits is garbage.
    budget = noise_budget(ct);
    if (budget < 0.01 + floor_bits_) {
      // The refused decryption's margin still feeds the telemetry: the
      // engine's partial result reports how close to the cliff it died.
      record_margin(budget);
      throw NoiseBudgetExhausted(budget, ct.noise_log2);
    }
  }
  record_margin(budget);
  return decrypt_unchecked(ct);
}

double Decryptor::estimated_budget(const Ciphertext& ct) const {
  return ctx_.params().log2_q() - 1.0 - ct.noise_log2;
}

void Decryptor::record_margin(double bits) const {
  double cur = min_margin_.load(std::memory_order_relaxed);
  while (bits < cur && !min_margin_.compare_exchange_weak(
                           cur, bits, std::memory_order_relaxed)) {
  }
}

double Decryptor::take_min_margin() const {
  return min_margin_.exchange(std::numeric_limits<double>::infinity(),
                              std::memory_order_relaxed);
}

Plaintext Decryptor::decrypt_unchecked(const Ciphertext& ct) const {
  RnsPoly acc = dot_with_key_powers(ct);
  const std::size_t n = ctx_.degree();
  const std::size_t k = ctx_.rns_size();
  Plaintext pt;
  pt.coeffs.resize(n);
  // Per-coefficient CRT composition is independent pure arithmetic.
  parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
    std::vector<u64> residues(k);
    for (std::size_t j = lo; j < hi; ++j) {
      for (std::size_t i = 0; i < k; ++i) residues[i] = acc.limb(i)[j];
      pt.coeffs[j] = ctx_.compose_center_mod_t(residues);
    }
  });
  return pt;
}

double Decryptor::noise_budget(const Ciphertext& ct) const {
  RnsPoly acc = dot_with_key_powers(ct);
  // Deliberately unchecked: this is the measurement path, and it must be
  // able to inspect ciphertexts that are already past the cliff.
  const Plaintext pt = decrypt_unchecked(ct);
  // noise = centered(acc) - m over the integers; since m < t << q, we can
  // subtract the lifted message per RNS component and measure the result.
  RnsPoly m = ctx_.lift_plaintext(pt);
  const std::size_t n = ctx_.degree();
  const std::size_t k = ctx_.rns_size();
  double max_log = 0.0;
  std::vector<u64> residues(k);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < k; ++i) {
      residues[i] = sub_mod(acc.limb(i)[j], m.limb(i)[j], ctx_.q(i));
    }
    max_log = std::max(max_log, ctx_.compose_center_log2(residues));
  }
  const double budget = ctx_.params().log2_q() - 1.0 - max_log;
  return budget;
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

Evaluator::Evaluator(const HeContext& ctx) : ctx_(ctx) {}


namespace {

// Tight worst-case bound for the noise of a sum: |e_a + e_b| <= |e_a| + |e_b|,
// i.e. log2(2^a + 2^b).  The previous max(a,b)+1 recurrence is the same bound
// for a single add, but applied along a k-term accumulation chain it compounds
// to +k bits where the true triangle-inequality growth is +log2(k) — the
// estimate went exponentially pessimistic exactly where the packed matmuls do
// the most work.
double noise_sum_log2(double a, double b) {
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log2(1.0 + std::exp2(lo - hi));
}

}  // namespace

void Evaluator::add_inplace(Ciphertext& a, const Ciphertext& b) const {
  ++counters_.adds;
  while (a.parts.size() < b.parts.size()) {
    a.parts.emplace_back(ctx_.rns_size(), ctx_.degree(), true);
  }
  for (std::size_t i = 0; i < b.parts.size(); ++i) {
    ctx_.add_inplace(a.parts[i], b.parts[i]);
  }
  a.noise_log2 = noise_sum_log2(a.noise_log2, b.noise_log2);
}

void Evaluator::sub_inplace(Ciphertext& a, const Ciphertext& b) const {
  ++counters_.adds;
  while (a.parts.size() < b.parts.size()) {
    a.parts.emplace_back(ctx_.rns_size(), ctx_.degree(), true);
  }
  for (std::size_t i = 0; i < b.parts.size(); ++i) {
    ctx_.sub_inplace(a.parts[i], b.parts[i]);
  }
  a.noise_log2 = noise_sum_log2(a.noise_log2, b.noise_log2);
}

void Evaluator::negate_inplace(Ciphertext& a) const {
  for (auto& p : a.parts) ctx_.negate_inplace(p);
}

void Evaluator::add_plain_inplace(Ciphertext& a, const Plaintext& pt) const {
  ++counters_.adds;
  RnsPoly m = ctx_.lift_plaintext(pt);
  ctx_.to_ntt(m);
  ctx_.add_inplace(a.parts[0], m);
}

void Evaluator::sub_plain_inplace(Ciphertext& a, const Plaintext& pt) const {
  ++counters_.adds;
  RnsPoly m = ctx_.lift_plaintext(pt);
  ctx_.to_ntt(m);
  ctx_.sub_inplace(a.parts[0], m);
}

void Evaluator::multiply_plain_inplace(Ciphertext& a,
                                       const Plaintext& pt) const {
  ++counters_.plain_mults;
  RnsPoly m = ctx_.lift_plaintext(pt);
  ctx_.to_ntt(m);
  for (auto& part : a.parts) ctx_.multiply_inplace(part, m);
  a.noise_log2 += std::log2(static_cast<double>(ctx_.degree())) +
                  std::log2(static_cast<double>(ctx_.t()));
}

void Evaluator::multiply_plain_accumulate(Ciphertext& acc, const Ciphertext& a,
                                          const Plaintext& pt) const {
  // acc += a * pt, fused: the limb product streams straight into acc with
  // no temporary ciphertext copy and no second add pass — the inner loop of
  // the packed matmul's Horner chains.
  ++counters_.plain_mults;
  ++counters_.adds;
  RnsPoly m = ctx_.lift_plaintext(pt);
  ctx_.to_ntt(m);
  while (acc.parts.size() < a.parts.size()) {
    acc.parts.emplace_back(ctx_.rns_size(), ctx_.degree(), true);
  }
  for (std::size_t i = 0; i < a.parts.size(); ++i) {
    ctx_.multiply_accumulate(acc.parts[i], a.parts[i], m);
  }
  const double term_noise = a.noise_log2 +
                            std::log2(static_cast<double>(ctx_.degree())) +
                            std::log2(static_cast<double>(ctx_.t()));
  acc.noise_log2 = noise_sum_log2(acc.noise_log2, term_noise);
}

Ciphertext Evaluator::multiply(const Ciphertext& a, const Ciphertext& b) const {
  ++counters_.ct_mults;
  if (a.size() != 2 || b.size() != 2) {
    throw std::invalid_argument("Evaluator::multiply: need size-2 operands");
  }
  Ciphertext out;
  // (a0, a1) x (b0, b1) -> (a0 b0, a0 b1 + a1 b0, a1 b1)
  out.parts.push_back(ctx_.multiply(a.parts[0], b.parts[0]));
  RnsPoly mid = ctx_.multiply(a.parts[0], b.parts[1]);
  RnsPoly mid2 = ctx_.multiply(a.parts[1], b.parts[0]);
  ctx_.add_inplace(mid, mid2);
  out.parts.push_back(std::move(mid));
  out.parts.push_back(ctx_.multiply(a.parts[1], b.parts[1]));
  out.noise_log2 = a.noise_log2 + b.noise_log2 +
                   std::log2(static_cast<double>(ctx_.degree()));
  return out;
}

// ---------------------------------------------------------------------------
// HoistedKeySwitch
// ---------------------------------------------------------------------------

HoistedKeySwitch::HoistedKeySwitch(const HeContext& ctx, const RnsPoly& c,
                                   std::uint32_t decomp_bits)
    : ctx_(ctx),
      k_(ctx.rns_size()),
      n_(ctx.degree()),
      decomp_bits_(decomp_bits) {
  if (c.rns_size() != k_ || c.degree() != n_) {
    throw std::invalid_argument("HoistedKeySwitch: shape mismatch");
  }
  const auto layout = ctx_.decomp_layout(decomp_bits);
  digit_count_ = layout.size();
  digits_ = PolyArena::local().checkout(digit_count_ * k_ * n_);
  // Coefficient-form source limbs: NTT-form input (every ciphertext
  // polynomial in this library) pays one inverse pass; coefficient-form
  // input is used directly.  inverse(forward(x)) == x exactly, so both
  // entry forms produce bit-identical digits.
  u64* base = digits_.data();
  PolyArena::Scratch coeff;
  const RnsPoly* coeff_src = &c;
  if (c.ntt_form) {
    coeff = PolyArena::local().checkout(k_ * n_);
    u64* cbase = coeff.data();
    parallel_for(0, k_, n_ * 32, [&](std::size_t i) {
      std::memcpy(cbase + i * n_, c.limb(i), n_ * sizeof(u64));
      ctx_.ntt(i).inverse(cbase + i * n_);
    });
    coeff_src = nullptr;
  }
  const u64* cbase = coeff_src == nullptr ? coeff.data() : nullptr;
  auto limb_coeffs = [&](std::size_t i) {
    return cbase != nullptr ? cbase + i * n_ : coeff_src->limb(i);
  };
  // Digit transforms use the LAZY-OUTPUT forward NTT: the final [0, p)
  // correction sweep is skipped and digit limbs stay in [0, 4p).  Both
  // consumers tolerate that — shoup_mul_acc_lazy2 accepts any redundant
  // residue (any 64-bit value on the 64-convention tiers, anything below
  // 2^52 on avx512ifma, and 4p < 2^52 holds at its p < 2^50 dispatch
  // bound), and the 128-bit fallback re-reduces on the fly in apply().
  // Every gadget-digit transform therefore drops one full pass over the
  // polynomial.  Final key-switch outputs stay bit-identical to canonical
  // digits: the accumulated lanes are fully reduced by add_reduce2p, and
  // congruent-mod-p inputs land on the same canonical result.
  if (decomp_bits == 0) {
    // CRT digits: digit(i, j) = (c mod q_i) mod q_j.  The diagonal is the
    // residue itself — for NTT-form input its transform is limb i verbatim,
    // so only the k*(k-1) off-diagonal limbs pay a forward NTT.  When
    // q_i < 4*q_j (always, for same-width prime sets) the explicit
    // re-reduction folds into that transform for free: the lazy forward
    // butterflies accept any input below 4p (first-stage conditional
    // subtract), and since the NTT is linear mod q_j its output on the raw
    // residues is congruent to reducing first.  reduce_span covers the
    // general q_i >= 4*q_j case.
    parallel_for(0, k_ * k_, n_ * 40, [&](std::size_t u) {
      const std::size_t i = u / k_;
      const std::size_t j = u % k_;
      u64* dst = base + (i * k_ + j) * n_;
      if (i == j && c.ntt_form) {
        std::memcpy(dst, c.limb(i), n_ * sizeof(u64));
        return;
      }
      const u64* src = limb_coeffs(i);
      if (i == j ||
          static_cast<u128>(ctx_.q(i)) < (static_cast<u128>(ctx_.q(j)) << 2)) {
        std::memcpy(dst, src, n_ * sizeof(u64));
      } else {
        const Barrett& br = ctx_.barrett(j);
        ctx_.kernels(j).reduce_span(dst, src, n_, br.modulus(), br.ratio_hi());
      }
      ctx_.ntt(j).forward_lazy_out(dst);
    });
  } else {
    // Sub-digits: digit (i, shift) holds ((c mod q_i) >> shift) & mask —
    // values < 2^w < every q_j, so the same extraction is a valid residue
    // for all moduli and only the forward transforms remain.
    const u64 mask = (u64{1} << decomp_bits) - 1;
    parallel_for(0, layout.size() * k_, n_ * 40, [&](std::size_t u) {
      const std::size_t f = u / k_;
      const std::size_t j = u % k_;
      const u64* src = limb_coeffs(layout[f].limb);
      const std::uint32_t shift = layout[f].shift;
      u64* dst = base + (f * k_ + j) * n_;
      for (std::size_t x = 0; x < n_; ++x) {
        dst[x] = (src[x] >> shift) & mask;
      }
      ctx_.ntt(j).forward_lazy_out(dst);
    });
  }
}

void HoistedKeySwitch::apply(u64 elt, const KSwitchKey& key, RnsPoly& acc0,
                             RnsPoly& acc1) const {
  if (key.b.size() != digit_count_ || key.a.size() != digit_count_ ||
      key.decomp_bits != decomp_bits_) {
    throw std::invalid_argument(
        "HoistedKeySwitch::apply: key decomposition mismatch");
  }
  const std::uint32_t* table =
      elt == 1 ? nullptr : ctx_.galois_ntt_table(elt).data();
  // Per limb j: accumulate the permuted-digit x key products lazily —
  // Shoup-lazy when the key carries precomputed quotients (each product
  // lands in [0, 2p) division-free and one conditional subtract keeps the
  // running sum there), 128-bit lanes + one closing Barrett sweep
  // otherwise.  Integer/modular addition commutes exactly, so results are
  // independent of digit order and thread count.
  const bool shoup = key.has_shoup();
  parallel_for(0, k_, n_ * 16 * digit_count_, [&](std::size_t j) {
    PolyArena& arena = PolyArena::local();
    const NttKernel& kern = ctx_.kernels(j);
    const Barrett& br = ctx_.barrett(j);
    auto perm = table != nullptr ? arena.checkout(n_) : PolyArena::Scratch();
    auto permute = [&](const u64* d) {
      if (table == nullptr) return d;
      u64* dst = perm.data();
      for (std::size_t x = 0; x < n_; ++x) dst[x] = d[table[x]];
      return static_cast<const u64*>(dst);
    };
    if (shoup) {
      auto lane_b = arena.checkout(n_);
      auto lane_a = arena.checkout(n_);
      lane_b.zero();
      lane_a.zero();
      for (std::size_t f = 0; f < digit_count_; ++f) {
        const u64* d = permute(digit(f, j));
        kern.shoup_mul_acc_lazy2(lane_b.data(), lane_a.data(), d,
                                 key.b[f].limb(j), key.b_shoup[f].limb(j),
                                 key.a[f].limb(j), key.a_shoup[f].limb(j),
                                 n_, br.modulus());
      }
      kern.add_reduce2p(acc0.limb(j), acc0.limb(j), lane_b.data(), n_,
                        br.modulus());
      kern.add_reduce2p(acc1.limb(j), acc1.limb(j), lane_a.data(), n_,
                        br.modulus());
      return;
    }
    // mul_acc_lazy accumulates one unreduced 128-bit product per digit per
    // lane; the closing Barrett sweep needs the sum below q_j * 2^64, i.e.
    // every digit limb fully reduced mod q_j so digits * q_j < 2^64 is
    // exact.  Lazy-staged digits live in [0, 4p) and would break that
    // bound, so this fallback canonicalizes each limb first (one
    // reduce_span pass — exactly the pass the Shoup path above saves; its
    // accumulators never leave [0, 2p) and need no bound at all).  The
    // shared digits_ stay untouched, so a hoisted set re-canonicalizes
    // once per apply() — acceptable on this path: it only serves keys
    // without precomputed quotients (every key this library generates
    // carries them), and mutating digits_ lazily would need cross-worker
    // synchronization inside the rotation parallel_for.
    if (static_cast<u128>(digit_count_) * br.modulus() >=
        (static_cast<u128>(1) << 64)) {
      throw std::invalid_argument(
          "HoistedKeySwitch::apply: digit count * modulus exceeds the "
          "128-bit lazy accumulation bound; regenerate the key with Shoup "
          "tables or fewer/narrower digits");
    }
    auto canon = table == nullptr ? arena.checkout(n_) : PolyArena::Scratch();
    auto canonical_digit = [&](const u64* d) {
      // Permuted digits already live in this thread's perm scratch;
      // reduce_span may alias out == a, so reduce in place there.
      u64* dst = table != nullptr ? perm.data() : canon.data();
      kern.reduce_span(dst, d, n_, br.modulus(), br.ratio_hi());
      return static_cast<const u64*>(dst);
    };
    auto lo_b = arena.checkout(n_);
    auto hi_b = arena.checkout(n_);
    auto lo_a = arena.checkout(n_);
    auto hi_a = arena.checkout(n_);
    lo_b.zero();
    hi_b.zero();
    lo_a.zero();
    hi_a.zero();
    for (std::size_t f = 0; f < digit_count_; ++f) {
      const u64* d = canonical_digit(permute(digit(f, j)));
      kern.mul_acc_lazy(lo_b.data(), hi_b.data(), d, key.b[f].limb(j), n_);
      kern.mul_acc_lazy(lo_a.data(), hi_a.data(), d, key.a[f].limb(j), n_);
    }
    auto tmp = arena.checkout(n_);
    kern.reduce_acc_span(tmp.data(), lo_b.data(), hi_b.data(), n_,
                         br.modulus(), br.ratio_hi(), br.ratio_lo());
    kern.add(acc0.limb(j), acc0.limb(j), tmp.data(), n_, br.modulus());
    kern.reduce_acc_span(tmp.data(), lo_a.data(), hi_a.data(), n_,
                         br.modulus(), br.ratio_hi(), br.ratio_lo());
    kern.add(acc1.limb(j), acc1.limb(j), tmp.data(), n_, br.modulus());
  });
}

void Evaluator::key_switch(const RnsPoly& c, const KSwitchKey& key,
                           RnsPoly& acc0, RnsPoly& acc1) const {
  const HoistedKeySwitch hoist(ctx_, c, key.decomp_bits);
  hoist.apply(1, key, acc0, acc1);
}

void Evaluator::relinearize_inplace(Ciphertext& a, const RelinKey& rk) const {
  ++counters_.relins;
  if (a.size() != 3) {
    throw std::invalid_argument("relinearize: expected 3-part ciphertext");
  }
  // c2 stays in NTT form: the key switch reuses its limbs as the digit
  // diagonal and only inverse-transforms once for the off-diagonal digits.
  key_switch(a.parts[2], rk.key, a.parts[0], a.parts[1]);
  a.parts.pop_back();
  a.noise_log2 = noise_sum_log2(a.noise_log2,
                                ctx_.kswitch_noise_log2(rk.key.decomp_bits));
}

namespace {

// Rotation noise bound shared by the single and hoisted paths.
double rotation_noise_log2(const HeContext& ctx, const KSwitchKey& key,
                           double in_noise) {
  return noise_sum_log2(in_noise, ctx.kswitch_noise_log2(key.decomp_bits));
}

}  // namespace

void Evaluator::apply_galois_inplace(Ciphertext& a, u64 elt,
                                     const GaloisKeys& gk) const {
  ++counters_.rotations;
  if (!gk.has(elt)) {
    throw std::invalid_argument("apply_galois: missing key for element " +
                                std::to_string(elt));
  }
  if (a.size() != 2) {
    throw std::invalid_argument("apply_galois: relinearize first");
  }
  // Hoisted data path even for a single rotation: c0 is permuted in NTT
  // form (no transforms at all), and c1's digit decomposition feeds the
  // lazy-accumulation key switch.  A rotation set built one step at a time
  // is therefore bit-identical to rotate_rows_many over the same steps.
  if (!a.parts[0].ntt_form) ctx_.to_ntt(a.parts[0]);
  if (!a.parts[1].ntt_form) ctx_.to_ntt(a.parts[1]);
  const KSwitchKey& key = gk.keys.at(elt);
  const HoistedKeySwitch hoist(ctx_, a.parts[1], key.decomp_bits);
  RnsPoly acc0;
  ctx_.apply_galois_ntt(a.parts[0], elt, acc0);
  RnsPoly acc1(ctx_.rns_size(), ctx_.degree(), true);
  hoist.apply(elt, key, acc0, acc1);
  a.parts[0] = std::move(acc0);
  a.parts[1] = std::move(acc1);
  a.noise_log2 = rotation_noise_log2(ctx_, key, a.noise_log2);
}

std::vector<Ciphertext> Evaluator::rotate_rows_many(
    const Ciphertext& a, const std::vector<int>& steps,
    const GaloisKeys& gk) const {
  if (a.size() != 2) {
    throw std::invalid_argument("rotate_rows_many: relinearize first");
  }
  const Ciphertext* src = &a;
  Ciphertext ntt_copy;
  if (!a.parts[0].ntt_form || !a.parts[1].ntt_form) {
    ntt_copy = a;
    ctx_.to_ntt(ntt_copy.parts[0]);
    ctx_.to_ntt(ntt_copy.parts[1]);
    src = &ntt_copy;
  }
  // Resolve elements and validate keys on the calling thread.  All keys in
  // the set must share one gadget layout — the hoisted decomposition is
  // built once for the whole set.
  std::vector<u64> elts(steps.size());
  std::uint32_t decomp_bits = 0;
  bool any_rotation = false;
  for (std::size_t s = 0; s < steps.size(); ++s) {
    elts[s] = steps[s] == 0 ? 1 : ctx_.galois_elt_from_step(steps[s]);
    if (elts[s] == 1) continue;
    if (!gk.has(elts[s])) {
      throw std::invalid_argument(
          "rotate_rows_many: missing key for element " +
          std::to_string(elts[s]));
    }
    const std::uint32_t w = gk.keys.at(elts[s]).decomp_bits;
    if (any_rotation && w != decomp_bits) {
      throw std::invalid_argument(
          "rotate_rows_many: keys mix gadget decompositions");
    }
    decomp_bits = w;
    any_rotation = true;
  }
  // One decomposition for the whole set.
  const std::optional<HoistedKeySwitch> hoist =
      any_rotation
          ? std::make_optional<HoistedKeySwitch>(ctx_, src->parts[1],
                                                 decomp_bits)
          : std::nullopt;
  std::vector<Ciphertext> out(steps.size());
  parallel_for(0, steps.size(), [&](std::size_t s) {
    if (elts[s] == 1) {
      out[s] = *src;
      return;
    }
    Ciphertext r;
    RnsPoly acc0;
    ctx_.apply_galois_ntt(src->parts[0], elts[s], acc0);
    RnsPoly acc1(ctx_.rns_size(), ctx_.degree(), true);
    const KSwitchKey& key = gk.keys.at(elts[s]);
    hoist->apply(elts[s], key, acc0, acc1);
    r.parts.push_back(std::move(acc0));
    r.parts.push_back(std::move(acc1));
    r.noise_log2 = rotation_noise_log2(ctx_, key, src->noise_log2);
    out[s] = std::move(r);
  });
  std::uint64_t rotated = 0;
  for (const u64 e : elts) rotated += e != 1 ? 1 : 0;
  counters_.rotations += rotated;
  counters_.hoisted_rotations += rotated;
  return out;
}

namespace {

// Single source of truth for the rotate-sum BSGS schedule: hoisted baby
// steps 1..n1-1 (n1 ~ sqrt(width)) plus doubling giant strides n1, 2*n1,
// ... < width.  rotate_sum_steps (key provisioning) and rotate_sum_inplace
// (execution) both consume this, so key material can never desync from the
// rotation walk.
struct RotateSumSchedule {
  std::vector<int> baby;
  std::vector<int> giant;
};

RotateSumSchedule rotate_sum_schedule(std::size_t width) {
  RotateSumSchedule sched;
  if (width <= 1) return sched;
  std::size_t log_w = 0;
  while ((std::size_t{1} << log_w) < width) ++log_w;
  const std::size_t n1 = std::size_t{1} << ((log_w + 1) / 2);
  for (std::size_t g = 1; g < n1 && g < width; ++g) {
    sched.baby.push_back(static_cast<int>(g));
  }
  for (std::size_t s = n1; s < width; s <<= 1) {
    sched.giant.push_back(static_cast<int>(s));
  }
  return sched;
}

}  // namespace

std::vector<int> Evaluator::rotate_sum_steps(std::size_t width) {
  const RotateSumSchedule sched = rotate_sum_schedule(width);
  std::vector<int> steps = sched.baby;
  steps.insert(steps.end(), sched.giant.begin(), sched.giant.end());
  return steps;
}

void Evaluator::rotate_sum_inplace(Ciphertext& a, std::size_t width,
                                   const GaloisKeys& gk) const {
  if (width <= 1) return;
  if ((width & (width - 1)) != 0) {
    throw std::invalid_argument("rotate_sum_inplace: width must be 2^k");
  }
  const RotateSumSchedule sched = rotate_sum_schedule(width);
  // Baby phase, hoisted: a <- sum of rot_g(a), g in [0, n1).
  if (!sched.baby.empty()) {
    const auto rots = rotate_rows_many(a, sched.baby, gk);
    for (const auto& r : rots) {
      add_inplace(a, r);
    }
  }
  // Giant phase: doubling strides fold the n1-blocks together.
  for (const int s : sched.giant) {
    Ciphertext rot = a;
    rotate_rows_inplace(rot, s, gk);
    add_inplace(a, rot);
  }
}

void Evaluator::rotate_rows_inplace(Ciphertext& a, int step,
                                    const GaloisKeys& gk) const {
  if (step == 0) return;
  apply_galois_inplace(a, ctx_.galois_elt_from_step(step), gk);
}

void Evaluator::rotate_columns_inplace(Ciphertext& a,
                                       const GaloisKeys& gk) const {
  apply_galois_inplace(a, ctx_.galois_elt_row_swap(), gk);
}

void Evaluator::serialize(const Ciphertext& ct, ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(ct.parts.size()));
  for (const auto& part : ct.parts) {
    w.u8(part.ntt_form ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(part.rns_size()));
    w.u64(part.degree());
    // Limbs are one contiguous buffer — a single memcpy-sized append.
    w.bytes(part.data(), part.word_count() * sizeof(u64));
  }
  w.f64(ct.noise_log2);
}

Ciphertext Evaluator::deserialize(ByteReader& r) const {
  Ciphertext ct;
  const auto parts = r.u32();
  // Legitimate ciphertexts have 2 parts (3 transiently, pre-relin); the
  // degree-bounded maximum any evaluator op can emit is 4.  Anything else
  // is a corrupted or hostile stream.
  if (parts < 1 || parts > 4) {
    throw std::out_of_range("deserialize: ciphertext part count " +
                            std::to_string(parts) + " outside [1, 4]");
  }
  for (std::uint32_t p = 0; p < parts; ++p) {
    const bool ntt_form = r.u8() != 0;
    const auto k = r.u32();
    const auto n = r.u64();
    // Exact-shape check: downstream kernels stream ctx-degree words through
    // unchecked pointers, so an undersized polynomial from a hostile or
    // corrupted stream must be rejected here, not discovered as an
    // out-of-bounds write later.
    if (k != ctx_.rns_size() || n != ctx_.degree()) {
      throw std::out_of_range("deserialize: polynomial shape mismatch");
    }
    RnsPoly poly(k, static_cast<std::size_t>(n), ntt_form);
    r.bytes(poly.data(), poly.word_count() * sizeof(u64));
    ct.parts.push_back(std::move(poly));
  }
  ct.noise_log2 = r.f64();
  // The noise estimate feeds the decrypt guard; a NaN/Inf or wildly
  // out-of-range value from the wire would disarm it.
  if (!std::isfinite(ct.noise_log2) || ct.noise_log2 < 0.0 ||
      ct.noise_log2 > 2.0 * ctx_.params().log2_q()) {
    throw std::out_of_range("deserialize: noise estimate " +
                            std::to_string(ct.noise_log2) +
                            " bits is not a sane value");
  }
  return ct;
}

}  // namespace primer
