// HeContext: precomputed tables shared by every HE object — NTTs per RNS
// prime, Barrett reducers, CRT composition constants for decryption, the
// batching NTT over the plaintext modulus, and Galois automorphism helpers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "he/params.h"
#include "he/rns_poly.h"
#include "he/u256.h"
#include "ntt/ntt.h"

namespace primer {

class HeContext {
 public:
  explicit HeContext(HeParams params);

  const HeParams& params() const { return params_; }
  std::size_t degree() const { return params_.poly_degree; }
  std::size_t rns_size() const { return params_.q.size(); }
  u64 q(std::size_t i) const { return params_.q[i]; }
  u64 t() const { return params_.t; }

  const Ntt& ntt(std::size_t i) const { return *ntts_[i]; }
  const Ntt& plain_ntt() const { return *plain_ntt_; }
  const Barrett& barrett(std::size_t i) const { return barretts_[i]; }
  // The kernel set limb arithmetic modulo q_i dispatches to (shared with
  // the per-prime Ntt; "scalar", "avx2", "avx512", or "avx512ifma").
  const NttKernel& kernels(std::size_t i) const { return ntts_[i]->kernel(); }
  const char* kernel_name() const { return ntts_[0]->kernel_name(); }

  // --- domain conversion -------------------------------------------------
  void to_ntt(RnsPoly& p) const;
  void to_coeff(RnsPoly& p) const;

  // --- arithmetic on RNS polynomials (domains must match) ----------------
  void add_inplace(RnsPoly& a, const RnsPoly& b) const;
  void sub_inplace(RnsPoly& a, const RnsPoly& b) const;
  void negate_inplace(RnsPoly& a) const;
  // Pointwise product; both operands must be in NTT form.
  RnsPoly multiply(const RnsPoly& a, const RnsPoly& b) const;
  void multiply_inplace(RnsPoly& a, const RnsPoly& b) const;
  // Fused acc += a * b (all NTT form) — one pass over the limbs, no
  // temporary polynomial.
  void multiply_accumulate(RnsPoly& acc, const RnsPoly& a,
                           const RnsPoly& b) const;
  // Multiply by a scalar (same scalar reduced per prime).
  void scalar_multiply_inplace(RnsPoly& a, u64 scalar) const;

  // --- sampling -----------------------------------------------------------
  RnsPoly sample_uniform(Rng& rng) const;         // uniform in R_q, coeff form
  RnsPoly sample_error(Rng& rng) const;           // CBD(eta), coeff form
  RnsPoly sample_ternary(Rng& rng) const;         // uniform {-1,0,1}, coeff form

  // Lifts a signed small polynomial (|v| << q_i) into RNS coefficient form.
  RnsPoly lift_signed(const std::vector<i64>& v) const;

  // Lifts a plaintext (coeffs mod t) into RNS coefficient form as integers
  // in [0, t) — the BGV message embedding.
  RnsPoly lift_plaintext(const Plaintext& p) const;

  // --- decryption helpers --------------------------------------------------
  // CRT-composes RNS residues of one coefficient, centers mod q, reduces
  // mod t (signed), returning the value in [0, t).
  u64 compose_center_mod_t(const std::vector<u64>& residues) const;
  // Log2 of the centered absolute value (for noise measurement).
  double compose_center_log2(const std::vector<u64>& residues) const;

  // --- Galois automorphisms -----------------------------------------------
  // x -> x^elt on a coefficient-form polynomial (elt odd, mod 2n).
  void apply_galois_coeff(const RnsPoly& in, u64 elt, RnsPoly& out) const;
  // Span variant over length-degree() buffers; in and out must not alias.
  void apply_galois_plain(const u64* in, u64 elt, u64* out, u64 modulus) const;
  void apply_galois_plain(const std::vector<u64>& in, u64 elt,
                          std::vector<u64>& out, u64 modulus) const;
  // Galois element implementing a rotation by `step` on the batched rows
  // (SEAL convention: generator 3 subgroup of Z_{2n}^*).
  u64 galois_elt_from_step(int step) const;
  // Galois element for the row-swap (column rotation): 2n - 1.
  u64 galois_elt_row_swap() const { return 2 * degree() - 1; }

  // x -> x^elt acting on NTT form.  The transform's slot i holds the
  // evaluation at psi^(2*bitrev(i)+1); the automorphism permutes those
  // evaluation points (no negation — x^n = -1 identities hold at the
  // points), so on NTT-form limbs it is the pure permutation
  // out[i] = in[table[i]].  Tables are cached per element; thread-safe.
  const std::vector<std::uint32_t>& galois_ntt_table(u64 elt) const;
  // Applies the permutation to every limb of an NTT-form polynomial.
  void apply_galois_ntt(const RnsPoly& in, u64 elt, RnsPoly& out) const;

  // --- key-switch gadget decomposition -------------------------------------
  // One entry per gadget digit under base-2^w sub-digit decomposition:
  // `limb` is the source RNS prime, `shift` the bit offset of the sub-digit
  // within that residue (digit value = (residue >> shift) & (2^w - 1)).
  // w == 0 returns one full-width digit per limb (shift 0), the CRT layout.
  struct GadgetDigit {
    std::uint32_t limb;
    std::uint32_t shift;
  };
  std::vector<GadgetDigit> decomp_layout(std::uint32_t decomp_bits) const;
  // Sub-digit width used for Galois keys: half the widest modulus, so the
  // per-digit magnitude (and with it the rotation key-switch noise) drops
  // from ~q_i to ~sqrt(q_i).  Rotations need that headroom because BSGS
  // matmuls multiply plaintext masks into ALREADY-ROTATED ciphertexts.
  std::uint32_t galois_decomp_bits() const;
  // Additive key-switch noise estimate (log2) for keys of the given width:
  // digits * n * digit_magnitude * t * eta.
  double kswitch_noise_log2(std::uint32_t decomp_bits) const;

  // --- CRT composition constants (public for tests) -----------------------
  // q_hat_i = q / q_i as U256; inv_q_hat_i = (q/q_i)^{-1} mod q_i.
  const std::vector<U256>& q_hat() const { return q_hat_; }
  const std::vector<u64>& inv_q_hat() const { return inv_q_hat_; }
  const U256& q_total() const { return q_total_; }

 private:
  HeParams params_;
  std::vector<std::unique_ptr<Ntt>> ntts_;
  std::unique_ptr<Ntt> plain_ntt_;
  std::vector<Barrett> barretts_;
  std::vector<U256> q_hat_;
  std::vector<u64> inv_q_hat_;
  U256 q_total_;
  U256 q_half_;
  std::vector<u64> q_mod_t_partial_;  // (q_hat_i mod t) for mod-t reduction
  u64 q_mod_t_ = 0;
  // Lazily-built NTT-domain Galois permutation tables (std::map node
  // stability keeps returned references valid across later insertions).
  mutable std::mutex galois_ntt_mu_;
  mutable std::map<u64, std::vector<std::uint32_t>> galois_ntt_tables_;
};

}  // namespace primer
