// Deterministic pseudo-random number generation for the Primer library.
//
// All randomness in the library flows through Rng so that every protocol
// execution, test, and benchmark is reproducible from a single seed.  The
// generator is xoshiro256** (Blackman & Vigna), which is fast, has a 256-bit
// state, and passes BigCrush.  It is NOT a CSPRNG; the real deployments the
// paper targets would use an AES-CTR DRBG, but the statistical properties
// (uniformity of masks, noise) that the protocols rely on are identical.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace primer {

// xoshiro256** seeded via splitmix64.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  // Re-initializes the state from a 64-bit seed using splitmix64 so that
  // nearby seeds yield unrelated streams.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound) without modulo bias (rejection sampling).
  std::uint64_t uniform(std::uint64_t bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform signed value in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform(span));
  }

  // Uniform double in [0, 1).
  double uniform_real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Standard normal via Box–Muller (sufficient quality for weight init).
  double gaussian() {
    double u1 = uniform_real();
    double u2 = uniform_real();
    while (u1 <= 1e-300) u1 = uniform_real();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Centered binomial distribution with parameter eta: sum of eta coin
  // differences, range [-eta, eta].  This is the RLWE noise distribution
  // used by the HE key generation / encryption (eta = 2 approximates a
  // discrete Gaussian with sigma ~ 1, eta = 10 gives sigma ~ 2.24).
  std::int64_t cbd(int eta) {
    std::int64_t acc = 0;
    int produced = 0;
    while (produced < eta) {
      std::uint64_t bits = next();
      const int take = std::min(32, eta - produced);
      for (int i = 0; i < take; ++i) {
        acc += static_cast<std::int64_t>(bits & 1);
        acc -= static_cast<std::int64_t>((bits >> 1) & 1);
        bits >>= 2;
      }
      produced += take;
    }
    return acc;
  }

  // Fills `out[0, n)` with uniform residues modulo `modulus`.
  void fill_uniform_mod(std::uint64_t* out, std::size_t n,
                        std::uint64_t modulus) {
    for (std::size_t i = 0; i < n; ++i) out[i] = uniform(modulus);
  }

  void fill_uniform_mod(std::vector<std::uint64_t>& out,
                        std::uint64_t modulus) {
    fill_uniform_mod(out.data(), out.size(), modulus);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace primer
