// Validated environment-variable parsing for runtime knobs.
//
// Every PRIMER_* knob used to be parsed ad hoc with std::stod/std::stoull,
// which silently accepted trailing junk ("0.1abc" -> 0.1) and wrapped
// negative integers around ("−1" -> 2^64-1).  A typo'd fault or retry knob
// would then misconfigure a run without any indication.  These helpers make
// the failure mode deterministic:
//
//   * unset or empty variable        -> fallback value
//   * unparsable / trailing junk /
//     NaN / negative-into-unsigned   -> std::invalid_argument naming the
//                                       variable and the offending value
//   * parsable but out of [lo, hi]   -> clamped to the nearest bound
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace primer {

namespace detail {

inline bool env_raw(const char* name, std::string& out) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  out.assign(v);
  // Trim surrounding whitespace; an all-whitespace value counts as unset.
  std::size_t b = 0, e = out.size();
  while (b < e && std::isspace(static_cast<unsigned char>(out[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(out[e - 1]))) --e;
  out = out.substr(b, e - b);
  return !out.empty();
}

[[noreturn]] inline void env_reject(const char* name, const std::string& value,
                                    const char* why) {
  throw std::invalid_argument(std::string(name) + "=\"" + value + "\": " +
                              why);
}

}  // namespace detail

// Floating-point knob (probabilities, seconds).  Clamps to [lo, hi].
inline double env_double(const char* name, double fallback, double lo,
                         double hi) {
  std::string raw;
  if (!detail::env_raw(name, raw)) return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || end != raw.c_str() + raw.size()) {
    detail::env_reject(name, raw, "not a number");
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    detail::env_reject(name, raw, "not a finite number");
  }
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

// Unsigned integer knob (frame offsets, seeds, counts).  Clamps to
// [lo, hi]; rejects negative values instead of wrapping them to 2^64-1.
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                             std::uint64_t lo = 0,
                             std::uint64_t hi =
                                 std::numeric_limits<std::uint64_t>::max()) {
  std::string raw;
  if (!detail::env_raw(name, raw)) return fallback;
  if (raw[0] == '-') detail::env_reject(name, raw, "negative");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (end == raw.c_str() || end != raw.c_str() + raw.size()) {
    detail::env_reject(name, raw, "not an unsigned integer");
  }
  if (errno == ERANGE) detail::env_reject(name, raw, "out of 64-bit range");
  const auto u = static_cast<std::uint64_t>(v);
  if (u < lo) return lo;
  if (u > hi) return hi;
  return u;
}

// String knob (paths, mode selectors).  Unset / all-whitespace returns the
// fallback; surrounding whitespace is trimmed like the numeric knobs.
// Validation (allowed values, path existence) is the caller's job — only
// the caller knows what the string means.
inline std::string env_string(const char* name, const std::string& fallback) {
  std::string raw;
  if (!detail::env_raw(name, raw)) return fallback;
  return raw;
}

// Signed integer knob.  Clamps to [lo, hi].
inline long env_long(const char* name, long fallback, long lo, long hi) {
  std::string raw;
  if (!detail::env_raw(name, raw)) return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(raw.c_str(), &end, 10);
  if (end == raw.c_str() || end != raw.c_str() + raw.size()) {
    detail::env_reject(name, raw, "not an integer");
  }
  if (errno == ERANGE) detail::env_reject(name, raw, "out of range");
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

}  // namespace primer
