#include "common/fs.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace primer {

namespace {

[[noreturn]] void fail(const std::string& op, const std::string& path) {
  const int e = errno;
  throw FsError(op, path, e, std::strerror(e));
}

// RAII fd so every error path closes; close errors after a successful
// fsync are ignored (the data already hit the platter).
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

void fsync_fd(int fd, const std::string& path, AtomicWriteStats* stats) {
  if (::fsync(fd) != 0) fail("fsync", path);
  if (stats != nullptr) ++stats->fsyncs;
}

}  // namespace

bool path_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool is_directory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

void ensure_dir(const std::string& path) {
  if (path.empty()) throw FsError("mkdir", path, EINVAL, "empty path");
  // Walk the components, creating each missing prefix (mkdir -p).
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') continue;
    const std::string prefix = path.substr(0, i);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      fail("mkdir", prefix);
    }
  }
  if (!is_directory(path)) {
    throw FsError("mkdir", path, ENOTDIR, "exists but is not a directory");
  }
}

std::vector<std::string> list_dir(const std::string& path) {
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) fail("opendir", path);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    const dirent* e = ::readdir(d);
    if (e == nullptr) break;
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  Fd f;
  f.fd = ::open(path.c_str(), O_RDONLY);
  if (f.fd < 0) return std::nullopt;
  struct stat st;
  if (::fstat(f.fd, &st) != 0 || !S_ISREG(st.st_mode)) return std::nullopt;
  std::vector<std::uint8_t> out(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::read(f.fd, out.data() + got, out.size() - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    got += static_cast<std::size_t>(n);
  }
  return out;
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) fail("unlink", path);
}

void rename_path(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) fail("rename", from);
}

void atomic_write_file(const std::string& dir, const std::string& name,
                       const std::uint8_t* data, std::size_t n,
                       const AtomicWriteHooks& hooks, AtomicWriteStats* stats) {
  const std::string final_path = dir + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  {
    Fd f;
    f.fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (f.fd < 0) fail("open", tmp_path);
    if (hooks.fail_write) {
      errno = EIO;
      fail("write", tmp_path);
    }
    const std::size_t to_write = std::min(n, hooks.truncate_at);
    std::size_t put = 0;
    while (put < to_write) {
      const ssize_t w = ::write(f.fd, data + put, to_write - put);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) fail("write", tmp_path);
      put += static_cast<std::size_t>(w);
    }
    if (stats != nullptr) stats->bytes_written += put;
    // The load-bearing fsync: without it, rename() can commit a name whose
    // data blocks never reached disk — the torn blob the recovery scan
    // exists to quarantine (hooks.truncate_at reproduces that state).
    fsync_fd(f.fd, tmp_path, stats);
  }
  if (hooks.crash_before_rename) {
    throw SimulatedCrash("before rename of " + tmp_path);
  }
  rename_path(tmp_path, final_path);
  if (hooks.crash_after_rename) {
    throw SimulatedCrash("after rename to " + final_path);
  }
  // Persist the directory entry itself, or the rename can be undone by
  // power loss even though the file contents are safe.
  {
    Fd d;
    d.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (d.fd < 0) fail("open", dir);
    fsync_fd(d.fd, dir, stats);
  }
}

}  // namespace primer
