// Byte-level serialization used by the simulated network channel.
//
// Every protocol message (ciphertexts, garbled tables, secret shares, wire
// labels) is flattened through ByteWriter/ByteReader so the channel can
// account for the exact number of bytes a real deployment would transmit —
// the paper's "Message GB" column in Table III is derived from these counts.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace primer {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) { append(&v, sizeof v); }

  void u64(std::uint64_t v) { append(&v, sizeof v); }

  void i64(std::int64_t v) { append(&v, sizeof v); }

  void f64(double v) { append(&v, sizeof v); }

  void bytes(const void* data, std::size_t n) { append(data, n); }

  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    if (!v.empty()) append(v.data(), v.size() * sizeof(std::uint64_t));
  }

  void vec_i64(const std::vector<std::int64_t>& v) {
    u64(v.size());
    if (!v.empty()) append(v.data(), v.size() * sizeof(std::int64_t));
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  void reserve(std::size_t n) { buf_.reserve(n); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : buf_(buf), pos_(0), limit_(buf.size()) {}

  // Reader over the sub-message buf[begin, end) — lets bulk decoders hand
  // independent slices of one framed message to parallel workers.
  ByteReader(const std::vector<std::uint8_t>& buf, std::size_t begin,
             std::size_t end)
      : buf_(buf), pos_(begin), limit_(end) {
    if (begin > end || end > buf.size()) {
      throw std::out_of_range("ByteReader: bad sub-range");
    }
  }

  std::uint8_t u8() {
    check(1);
    return buf_[pos_++];
  }

  std::uint32_t u32() {
    std::uint32_t v;
    extract(&v, sizeof v);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v;
    extract(&v, sizeof v);
    return v;
  }

  std::int64_t i64() {
    std::int64_t v;
    extract(&v, sizeof v);
    return v;
  }

  double f64() {
    double v;
    extract(&v, sizeof v);
    return v;
  }

  void bytes(void* out, std::size_t n) { extract(out, n); }

  std::vector<std::uint64_t> vec_u64() {
    const auto n = check_count(u64(), sizeof(std::uint64_t));
    std::vector<std::uint64_t> v(n);
    if (n) extract(v.data(), n * sizeof(std::uint64_t));
    return v;
  }

  std::vector<std::int64_t> vec_i64() {
    const auto n = check_count(u64(), sizeof(std::int64_t));
    std::vector<std::int64_t> v(n);
    if (n) extract(v.data(), n * sizeof(std::int64_t));
    return v;
  }

  bool done() const { return pos_ == limit_; }
  std::size_t remaining() const { return limit_ - pos_; }
  std::size_t position() const { return pos_; }

  // Advances past n bytes without copying them out.
  void skip(std::size_t n) {
    check(n);
    pos_ += n;
  }

 private:
  // Overflow-safe bounds check: `pos_ + n` can wrap for a hostile n, so
  // compare against the remaining span instead.
  void check(std::size_t n) const {
    if (n > limit_ - pos_) {
      throw std::out_of_range(
          "ByteReader: truncated message (need " + std::to_string(n) +
          " bytes at offset " + std::to_string(pos_) + ", only " +
          std::to_string(limit_ - pos_) + " remain)");
    }
  }

  // Validates a wire-supplied element count before the vector allocation:
  // `count * elem_size` must not overflow and must fit in the remaining
  // bytes, or a 64-bit length field could demand a wild allocation.
  std::uint64_t check_count(std::uint64_t count, std::size_t elem_size) const {
    if (count > (limit_ - pos_) / elem_size) {
      throw std::out_of_range(
          "ByteReader: vector length " + std::to_string(count) + " (x" +
          std::to_string(elem_size) + " bytes) at offset " +
          std::to_string(pos_) + " exceeds the " +
          std::to_string(limit_ - pos_) + " remaining bytes");
    }
    return count;
  }

  void extract(void* out, std::size_t n) {
    check(n);
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
  }

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
  std::size_t limit_ = 0;
};

}  // namespace primer
