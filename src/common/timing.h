// Wall-clock timing helpers plus the CostAccumulator that every protocol
// phase reports into.  Benchmarks combine measured compute seconds with the
// channel's simulated network seconds to reproduce the paper's
// offline/online latency split.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <limits>
#include <map>
#include <string>

namespace primer {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// CPU time consumed by the whole process (all threads).  With the parallel
// executor enabled, cpu_seconds / wall_seconds measures effective
// parallelism; on one thread the two coincide up to scheduler noise.
inline double process_cpu_seconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

// Measures wall and aggregate-CPU time over the same interval.
class CpuWallTimer {
 public:
  CpuWallTimer() : cpu_start_(process_cpu_seconds()) {}

  double wall_seconds() const { return wall_.seconds(); }
  double cpu_seconds() const { return process_cpu_seconds() - cpu_start_; }

 private:
  Stopwatch wall_;
  double cpu_start_;
};

// Named accumulation of compute seconds and primitive-operation counts,
// keyed by phase ("offline" / "online") and step name ("embed", "qkv",
// "qk", "softmax", "attn_v", "others" — the columns of Table II).
struct PhaseCost {
  double compute_seconds = 0.0;  // wall-clock compute
  double cpu_seconds = 0.0;      // aggregate CPU across worker threads
  double network_seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t rounds = 0;
  std::uint64_t he_mults = 0;       // ciphertext x plaintext
  std::uint64_t he_ct_mults = 0;    // ciphertext x ciphertext
  std::uint64_t he_rotations = 0;
  std::uint64_t he_adds = 0;
  std::uint64_t gc_and_gates = 0;
  // GC compute split: garbling is offline work, evaluation online.  Wall
  // and aggregate-CPU are tracked separately so gates/s and effective
  // parallelism are both recoverable.
  double gc_garble_seconds = 0.0;
  double gc_garble_cpu_seconds = 0.0;
  double gc_eval_seconds = 0.0;
  double gc_eval_cpu_seconds = 0.0;
  std::uint64_t gc_table_bytes = 0;           // garbled-table payload shipped
  std::uint64_t gc_streamed_table_bytes = 0;  // of which via kGcTableChunk
  std::uint64_t gc_table_chunks = 0;          // streamed spans shipped
  // Retry-layer traffic (frames resent after injected faults plus their
  // bytes, control requests included in bytes_sent already).
  std::uint64_t retransmits = 0;
  std::uint64_t retransmit_bytes = 0;
  // Smallest estimated noise budget (bits) observed at any decryption in
  // this step; +inf when the step decrypted nothing.
  double min_noise_margin_bits = std::numeric_limits<double>::infinity();

  double total_seconds() const { return compute_seconds + network_seconds; }

  PhaseCost& operator+=(const PhaseCost& o) {
    compute_seconds += o.compute_seconds;
    cpu_seconds += o.cpu_seconds;
    network_seconds += o.network_seconds;
    bytes_sent += o.bytes_sent;
    rounds += o.rounds;
    he_mults += o.he_mults;
    he_ct_mults += o.he_ct_mults;
    he_rotations += o.he_rotations;
    he_adds += o.he_adds;
    gc_and_gates += o.gc_and_gates;
    gc_garble_seconds += o.gc_garble_seconds;
    gc_garble_cpu_seconds += o.gc_garble_cpu_seconds;
    gc_eval_seconds += o.gc_eval_seconds;
    gc_eval_cpu_seconds += o.gc_eval_cpu_seconds;
    gc_table_bytes += o.gc_table_bytes;
    gc_streamed_table_bytes += o.gc_streamed_table_bytes;
    gc_table_chunks += o.gc_table_chunks;
    retransmits += o.retransmits;
    retransmit_bytes += o.retransmit_bytes;
    min_noise_margin_bits = std::min(min_noise_margin_bits, o.min_noise_margin_bits);
    return *this;
  }
};

class CostAccumulator {
 public:
  PhaseCost& at(const std::string& phase, const std::string& step) {
    return costs_[phase][step];
  }

  const std::map<std::string, std::map<std::string, PhaseCost>>& all() const {
    return costs_;
  }

  PhaseCost phase_total(const std::string& phase) const {
    PhaseCost total;
    auto it = costs_.find(phase);
    if (it == costs_.end()) return total;
    for (const auto& [step, cost] : it->second) total += cost;
    return total;
  }

  void clear() { costs_.clear(); }

 private:
  std::map<std::string, std::map<std::string, PhaseCost>> costs_;
};

}  // namespace primer
