#include "common/arena.h"

namespace primer {

PolyArena& PolyArena::local() {
  thread_local PolyArena arena;
  return arena;
}

}  // namespace primer
