// Thin POSIX filesystem helpers with typed errors, plus the atomic
// write-file protocol the durable session store builds on.
//
// The durability contract every caller relies on (net/session_fs.h):
//
//   write temp file -> fsync(temp) -> rename(temp, final) -> fsync(dir)
//
// rename() is the commit point: a reader either sees the complete old
// state or the complete new file, never a half-written one — provided the
// data was fsync'd *before* the rename (skipping that fsync is the classic
// torn-write bug, which AtomicWriteHooks can reproduce on purpose) and the
// directory entry is fsync'd *after* it (or the file can vanish again on
// power loss).  Failures carry the errno so callers can distinguish a full
// disk (ENOSPC) from a dying one (EIO) from a caller bug (ENOENT).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace primer {

// A filesystem operation failed; op/path/errno preserved for typed
// degradation decisions (net/frame.h StorageDegraded is built from this).
class FsError : public std::runtime_error {
 public:
  FsError(const std::string& op, const std::string& path, int saved_errno,
          const std::string& detail)
      : std::runtime_error(op + " '" + path + "': " + detail + " (errno " +
                           std::to_string(saved_errno) + ")"),
        op_(op),
        path_(path),
        errno_(saved_errno) {}

  const std::string& op() const { return op_; }
  const std::string& path() const { return path_; }
  int saved_errno() const { return errno_; }

 private:
  std::string op_;
  std::string path_;
  int errno_;
};

// Thrown by atomic_write_file when a crash hook fires: models the process
// dying at that exact point in the protocol.  Tests catch it and re-open
// the directory the way a freshly exec'd process would.  Deliberately NOT
// an FsError — degradation handlers must not swallow a simulated crash.
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& where)
      : std::runtime_error("simulated crash: " + where) {}
};

bool path_exists(const std::string& path);
bool is_directory(const std::string& path);

// mkdir -p: creates every missing component; existing directories are fine.
void ensure_dir(const std::string& path);

// Entry names (not paths) in `path`, sorted, "." and ".." excluded.
std::vector<std::string> list_dir(const std::string& path);

// Whole-file read.  std::nullopt on ANY failure (missing, unreadable,
// truncated mid-read) — the recovery scan treats every unreadable blob the
// same way, as quarantine fodder, so the distinction is not load-bearing.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);

void remove_file(const std::string& path);  // missing file is not an error
void rename_path(const std::string& from, const std::string& to);

// Fault hooks for atomic_write_file, wired to PRIMER_STORE_FAULT_* by the
// durable store.  Defaults are all-off (a faithful write).
struct AtomicWriteHooks {
  // Silently write only the first `truncate_at` bytes but complete the
  // protocol anyway: produces a committed-but-torn blob, the on-disk state
  // of a store that renamed before fsyncing its data.
  std::size_t truncate_at = std::numeric_limits<std::size_t>::max();
  bool fail_write = false;           // report EIO from the data write
  bool crash_before_rename = false;  // die after fsync(temp): no commit
  bool crash_after_rename = false;   // die after rename: committed, dir not
                                     // yet fsync'd
};

struct AtomicWriteStats {
  std::uint64_t bytes_written = 0;
  std::uint64_t fsyncs = 0;  // file + directory syncs
};

// The full temp -> fsync -> rename -> fsync-dir protocol for
// `dir`/`name`.  Throws FsError on real failures (ENOSPC, EIO, ...),
// SimulatedCrash when a crash hook fires.  `stats` (optional) accumulates
// bytes/fsync telemetry.
void atomic_write_file(const std::string& dir, const std::string& name,
                       const std::uint8_t* data, std::size_t n,
                       const AtomicWriteHooks& hooks = {},
                       AtomicWriteStats* stats = nullptr);

}  // namespace primer
