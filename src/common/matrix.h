// Dense row-major matrix over an arbitrary arithmetic element type.
//
// Mat<int64_t> carries fixed-point raw values through the protocols;
// Mat<double> is used by the float reference model.  Kept deliberately
// simple (no expression templates) — protocol correctness and operation
// accounting, not raw GEMM speed, is what the reproduction measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fixed_point.h"
#include "common/rng.h"

namespace primer {

template <typename T>
class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Mat identity(std::size_t n) {
    Mat m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  T& at(std::size_t r, std::size_t c) {
    bounds_check(r, c);
    return (*this)(r, c);
  }
  const T& at(std::size_t r, std::size_t c) const {
    bounds_check(r, c);
    return (*this)(r, c);
  }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  bool same_shape(const Mat& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  Mat operator+(const Mat& o) const {
    require_same_shape(o, "+");
    Mat out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
      out.data_[i] = data_[i] + o.data_[i];
    return out;
  }

  Mat operator-(const Mat& o) const {
    require_same_shape(o, "-");
    Mat out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
      out.data_[i] = data_[i] - o.data_[i];
    return out;
  }

  Mat& operator+=(const Mat& o) {
    require_same_shape(o, "+=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }

  Mat& operator-=(const Mat& o) {
    require_same_shape(o, "-=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }

  Mat operator*(const Mat& o) const {
    if (cols_ != o.rows_) {
      throw std::invalid_argument("Mat*: inner dims " + std::to_string(cols_) +
                                  " vs " + std::to_string(o.rows_));
    }
    Mat out(rows_, o.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const T a = (*this)(i, k);
        if (a == T{}) continue;
        for (std::size_t j = 0; j < o.cols_; ++j) out(i, j) += a * o(k, j);
      }
    }
    return out;
  }

  Mat transposed() const {
    Mat out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  Mat scaled(T s) const {
    Mat out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
    return out;
  }

  bool operator==(const Mat& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  void bounds_check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw std::out_of_range("Mat::at(" + std::to_string(r) + "," +
                              std::to_string(c) + ") on " +
                              std::to_string(rows_) + "x" +
                              std::to_string(cols_));
    }
  }

  void require_same_shape(const Mat& o, const char* op) const {
    if (!same_shape(o)) {
      throw std::invalid_argument(std::string("Mat") + op +
                                  ": shape mismatch");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatI = Mat<std::int64_t>;
using MatD = Mat<double>;

// Uniform random fixed-point matrix with entries drawn in [lo, hi] (real
// units), encoded with format `f`.
inline MatI random_fp_matrix(Rng& rng, std::size_t rows, std::size_t cols,
                             double lo, double hi,
                             const FixedPointFormat& f = kDefaultFixedPoint) {
  MatI m(rows, cols);
  for (auto& v : m.data())
    v = fp_encode(lo + (hi - lo) * rng.uniform_real(), f);
  return m;
}

// Uniform random matrix over the full masking domain [min_raw, max_raw].
// Used for the Rc/Rs one-time-pad masks of the HGS family of protocols.
inline MatI random_mask_matrix(Rng& rng, std::size_t rows, std::size_t cols,
                               std::int64_t lo, std::int64_t hi) {
  MatI m(rows, cols);
  for (auto& v : m.data()) v = rng.uniform_int(lo, hi);
  return m;
}

// Fixed-point matrix product with the paper's truncation discipline: the
// accumulation happens at double precision width (2*frac_bits) and the
// result is truncated back to the 15-bit format.
inline MatI fp_matmul(const MatI& a, const MatI& b,
                      const FixedPointFormat& f = kDefaultFixedPoint) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("fp_matmul: inner dimension mismatch");
  }
  MatI out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      std::int64_t acc = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      out(i, j) = fp_truncate(acc, f);
    }
  }
  return out;
}

inline MatD to_double(const MatI& m,
                      const FixedPointFormat& f = kDefaultFixedPoint) {
  MatD out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i)
    out.data()[i] = fp_decode(m.data()[i], f);
  return out;
}

inline MatI to_fixed(const MatD& m,
                     const FixedPointFormat& f = kDefaultFixedPoint) {
  MatI out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i)
    out.data()[i] = fp_encode(m.data()[i], f);
  return out;
}

}  // namespace primer
