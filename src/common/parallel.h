// Parallel execution layer: a fixed-size thread pool behind simple
// parallel_for / parallel_for_2d entry points.
//
// The Primer hot paths are embarrassingly parallel over independent units —
// RNS limbs in NTT/limb arithmetic, key-switch digits, result ciphertexts of
// a packed matmul — and every unit is pure modular arithmetic on disjoint
// data.  The global executor therefore guarantees *bit-identical* results to
// the serial path: loop bodies may be interleaved in any order but never
// share mutable state, and all Rng sampling stays on the calling thread.
//
// Configuration: the pool size defaults to the PRIMER_THREADS environment
// variable (unset, empty, or unparsable -> 1, i.e. serial; 0 -> hardware
// concurrency, matching set_num_threads(0)) and can be changed at runtime
// with set_num_threads().  With one thread every entry point degenerates to
// a plain loop on the calling thread — no pool, no locks.
//
// Nested calls (a loop body that itself reaches a parallel_for, e.g. a
// packed-matmul worker calling Evaluator::rotate which parallelizes over
// key-switch digits) execute inline on the current thread, so nesting is
// safe and never deadlocks.  The first exception thrown by any loop body is
// captured and rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>

namespace primer {

class CancelToken;

// Installs (or clears, with nullptr) a cancellation token the executor
// polls at chunk boundaries: when the token fires, workers stop claiming
// chunks and OperationCancelled is rethrown on the dispatching thread.
// Cancellation is cooperative — a chunk body already running completes.
// The slot is thread-local to the *dispatching* thread: each serving
// worker installs its own session's token, and a dispatched loop carries
// the dispatcher's token to the pool workers it borrows — concurrent
// sessions never see each other's cancellations.
void set_parallel_cancel_token(const CancelToken* token);

// The token installed on the calling thread (null if none).
const CancelToken* parallel_cancel_token();

// Number of threads the global executor is configured to use (>= 1).
std::size_t num_threads();

// Reconfigures the global executor.  n == 0 selects the hardware
// concurrency; n == 1 disables the pool (serial execution).  Must not be
// called from inside a parallel_for body.
void set_num_threads(std::size_t n);

// Hardware concurrency hint (>= 1 even when unknown).
std::size_t hardware_threads();

// Total work (in element-op units, see below) under which dispatching to
// the pool costs more than it saves: a pool wakeup is on the order of tens
// of microseconds, i.e. ~100k single-word modular operations.
inline constexpr std::size_t kSerialGrain = std::size_t{1} << 17;

// Invokes body(i) for every i in [begin, end), partitioned across the
// global executor.  Iterations must touch disjoint mutable state.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

// Variant with a cost hint: work_per_item approximates one iteration's cost
// in element ops (e.g. the polynomial degree for an elementwise limb loop).
// When the loop's total work is below kSerialGrain it runs serially on the
// calling thread — a pool wakeup would cost more than it saves.  Without a
// hint, loops are assumed heavy enough to dispatch.
void parallel_for(std::size_t begin, std::size_t end,
                  std::size_t work_per_item,
                  const std::function<void(std::size_t)>& body);

// Chunked variant: invokes body(lo, hi) on contiguous subranges that
// exactly cover [begin, end).  Lets the body hoist per-chunk scratch
// buffers out of the element loop.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>&
                             body);

// Invokes body(i, j) for every (i, j) in [0, rows) x [0, cols).
void parallel_for_2d(std::size_t rows, std::size_t cols,
                     const std::function<void(std::size_t, std::size_t)>&
                         body);

}  // namespace primer
