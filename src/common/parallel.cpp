#include "common/parallel.h"

#include "common/cancel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace primer {

namespace {

// True while the current thread is executing inside a parallel region —
// either as a pool worker or as the dispatching thread participating in its
// own loop.  Nested parallel_for calls check this and run inline.
thread_local bool tl_in_parallel = false;

// Cancellation token polled at chunk boundaries (null = no cancellation).
// Thread-local to the dispatching thread: each serving worker scopes its
// own session's token, so one session's cancel never aborts another's loop.
thread_local const CancelToken* tl_cancel = nullptr;

// One dispatched loop: workers claim [begin, end) chunks via an atomic
// cursor, so the partition adapts to uneven chunk costs.
struct Task {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;
  // The dispatching thread's cancel token, captured at dispatch so pool
  // workers poll the *session that owns this loop*, not their own slot.
  const CancelToken* cancel = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t in_flight = 0;  // workers inside run_task (guarded by pool mutex)
  std::exception_ptr error;
  std::mutex error_mu;
};

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  std::size_t workers() const { return workers_.size(); }

  // Blocks until body(lo, hi) has covered [begin, end).  The calling thread
  // participates, so the pool makes progress even with zero idle workers.
  void run(std::size_t begin, std::size_t end, std::size_t chunk,
           const std::function<void(std::size_t, std::size_t)>& body) {
    Task task;
    task.body = &body;
    task.begin = begin;
    task.end = end;
    task.chunk = chunk;
    task.cancel = tl_cancel;  // run() executes on the dispatching thread
    task.next.store(begin, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      task_ = &task;
      ++generation_;
    }
    cv_.notify_all();
    run_task(task);
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return task.in_flight == 0; });
      task_ = nullptr;  // no worker can join a detached task
    }
    if (task.error) std::rethrow_exception(task.error);
  }

 private:
  static void run_task(Task& task) {
    const bool was_in_parallel = tl_in_parallel;
    tl_in_parallel = true;
    // Adopt the dispatcher's token for the duration so nested inline
    // regions inside chunk bodies poll the owning session's cancellation.
    const CancelToken* prev_cancel = tl_cancel;
    tl_cancel = task.cancel;
    const CancelToken* cancel = task.cancel;
    for (;;) {
      const std::size_t lo =
          task.next.fetch_add(task.chunk, std::memory_order_relaxed);
      if (lo >= task.end) break;
      const std::size_t hi = std::min(lo + task.chunk, task.end);
      try {
        if (cancel != nullptr) cancel->check("parallel_for chunk");
        (*task.body)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lk(task.error_mu);
        if (!task.error) task.error = std::current_exception();
      }
    }
    tl_cancel = prev_cancel;
    tl_in_parallel = was_in_parallel;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      Task* task = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] {
          return stop_ || (task_ != nullptr && generation_ != seen);
        });
        if (stop_) return;
        seen = generation_;
        task = task_;
        ++task->in_flight;
      }
      run_task(*task);
      {
        std::lock_guard<std::mutex> lk(mu_);
        --task->in_flight;
      }
      done_cv_.notify_one();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Task* task_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

struct Executor {
  std::mutex mu;  // guards pool reconfiguration and serializes dispatches
  std::atomic<std::size_t> threads{1};  // lock-free for num_threads()
  std::unique_ptr<ThreadPool> pool;  // workers = threads - 1; null if serial
};

std::size_t env_default_threads() {
  const char* env = std::getenv("PRIMER_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* endp = nullptr;
  const long v = std::strtol(env, &endp, 10);
  if (endp == env || v < 0) return 1;  // unparsable / negative: stay serial
  if (v == 0) return hardware_threads();  // 0: match set_num_threads(0)
  return static_cast<std::size_t>(v);
}

Executor& executor() {
  static Executor* exec = [] {
    auto* e = new Executor;
    const std::size_t t = env_default_threads();
    e->threads.store(t, std::memory_order_relaxed);
    if (t > 1) e->pool = std::make_unique<ThreadPool>(t - 1);
    return e;
  }();
  return *exec;
}

void serial_run(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (tl_cancel != nullptr) tl_cancel->check("parallel_for serial region");
  body(begin, end);
}

void dispatch(std::size_t begin, std::size_t end, std::size_t grains,
              const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (tl_in_parallel) {  // nested region: run inline, never deadlock
    serial_run(begin, end, body);
    return;
  }
  Executor& exec = executor();
  std::unique_lock<std::mutex> lk(exec.mu);
  const std::size_t threads = exec.threads.load(std::memory_order_relaxed);
  if (threads <= 1 || end - begin <= 1 || exec.pool == nullptr) {
    lk.unlock();
    serial_run(begin, end, body);
    return;
  }
  // Oversubscribe chunks a little so an uneven iteration cannot leave the
  // other workers idle behind one straggler.
  const std::size_t n = end - begin;
  const std::size_t target = threads * grains;
  const std::size_t chunk = std::max<std::size_t>(1, n / target);
  exec.pool->run(begin, end, chunk, body);
}

}  // namespace

void set_parallel_cancel_token(const CancelToken* token) {
  tl_cancel = token;
}

const CancelToken* parallel_cancel_token() { return tl_cancel; }

std::size_t hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

std::size_t num_threads() {
  return executor().threads.load(std::memory_order_relaxed);
}

void set_num_threads(std::size_t n) {
  if (n == 0) n = hardware_threads();
  Executor& exec = executor();
  std::lock_guard<std::mutex> lk(exec.mu);
  if (n == exec.threads.load(std::memory_order_relaxed)) return;
  exec.pool.reset();
  exec.threads.store(n, std::memory_order_relaxed);
  if (n > 1) exec.pool = std::make_unique<ThreadPool>(n - 1);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  dispatch(begin, end, /*grains=*/4,
           [&](std::size_t lo, std::size_t hi) {
             for (std::size_t i = lo; i < hi; ++i) body(i);
           });
}

void parallel_for(std::size_t begin, std::size_t end,
                  std::size_t work_per_item,
                  const std::function<void(std::size_t)>& body) {
  if (begin < end && (end - begin) * work_per_item < kSerialGrain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  parallel_for(begin, end, body);
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  dispatch(begin, end, /*grains=*/1, body);
}

void parallel_for_2d(std::size_t rows, std::size_t cols,
                     const std::function<void(std::size_t, std::size_t)>&
                         body) {
  if (rows == 0 || cols == 0) return;
  dispatch(0, rows * cols, /*grains=*/4,
           [&](std::size_t lo, std::size_t hi) {
             for (std::size_t i = lo; i < hi; ++i) {
               body(i / cols, i % cols);
             }
           });
}

}  // namespace primer
