// 15-bit fixed-point codec (paper §IV: "inputs and weights use 15-bit
// fix-point representation and the intermediate results are truncated into
// 15 bits to avoid overflow").
//
// Values are stored as signed integers v = round(x * 2^kFracBits) clamped to
// the 15-bit two's-complement range.  After every multiply the product holds
// 2*kFracBits fractional bits and must be re-truncated with `truncate()`.
// All protocol arithmetic happens on these integers embedded either in the
// HE plaintext modulus ring or in Z_2^64 secret shares.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace primer {

struct FixedPointFormat {
  int total_bits = 15;  // paper's representation width
  int frac_bits = 8;    // scale = 2^8; leaves 6 integer bits + sign

  std::int64_t scale() const { return std::int64_t{1} << frac_bits; }
  std::int64_t max_raw() const {
    return (std::int64_t{1} << (total_bits - 1)) - 1;
  }
  std::int64_t min_raw() const {
    return -(std::int64_t{1} << (total_bits - 1));
  }
};

inline constexpr FixedPointFormat kDefaultFixedPoint{};

// Encodes a real value into the raw fixed-point integer, saturating at the
// representable range (the paper truncates rather than wraps).
inline std::int64_t fp_encode(double x,
                              const FixedPointFormat& f = kDefaultFixedPoint) {
  const double scaled = std::nearbyint(x * static_cast<double>(f.scale()));
  const double lo = static_cast<double>(f.min_raw());
  const double hi = static_cast<double>(f.max_raw());
  return static_cast<std::int64_t>(std::clamp(scaled, lo, hi));
}

inline double fp_decode(std::int64_t raw,
                        const FixedPointFormat& f = kDefaultFixedPoint) {
  return static_cast<double>(raw) / static_cast<double>(f.scale());
}

// Truncates a double-width product (2*frac_bits fractional bits) back to
// frac_bits, with arithmetic (round-toward-negative-infinity) shift, then
// saturates to the 15-bit range.  Matches the paper's "truncated into 15
// bits to avoid overflow".
inline std::int64_t fp_truncate(std::int64_t product,
                                const FixedPointFormat& f = kDefaultFixedPoint) {
  const std::int64_t shifted = product >> f.frac_bits;
  return std::clamp(shifted, f.min_raw(), f.max_raw());
}

// Saturating re-clamp without rescale (used after additions).
inline std::int64_t fp_saturate(std::int64_t v,
                                const FixedPointFormat& f = kDefaultFixedPoint) {
  return std::clamp(v, f.min_raw(), f.max_raw());
}

inline std::vector<std::int64_t> fp_encode_vec(
    const std::vector<double>& xs, const FixedPointFormat& f = kDefaultFixedPoint) {
  std::vector<std::int64_t> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = fp_encode(xs[i], f);
  return out;
}

inline std::vector<double> fp_decode_vec(
    const std::vector<std::int64_t>& raw,
    const FixedPointFormat& f = kDefaultFixedPoint) {
  std::vector<double> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) out[i] = fp_decode(raw[i], f);
  return out;
}

// Maps a signed raw value into the HE plaintext ring Z_t (centered lift).
inline std::uint64_t fp_to_ring(std::int64_t raw, std::uint64_t t) {
  const auto m = static_cast<std::int64_t>(t);
  std::int64_t r = raw % m;
  if (r < 0) r += m;
  return static_cast<std::uint64_t>(r);
}

// Inverse of fp_to_ring: centered representative in (-t/2, t/2].
inline std::int64_t fp_from_ring(std::uint64_t v, std::uint64_t t) {
  if (v > t / 2) return static_cast<std::int64_t>(v) - static_cast<std::int64_t>(t);
  return static_cast<std::int64_t>(v);
}

}  // namespace primer
