// Thread-local scratch arena for polynomial-sized u64 buffers.
//
// The key-switch and packed-matmul hot paths need short-lived limb buffers —
// digit decompositions, lazy 128-bit accumulators, Galois permutation
// scratch — sized degree or rns_size^2 * degree words.  Allocating those per
// operation costs a heap round-trip plus a page-touching fill on every
// key-switch, and under the thread pool every worker hits the global
// allocator at once.  PolyArena keeps a per-thread cache of 64-byte-aligned
// buffers and recycles them: checkout() returns the smallest cached buffer
// that fits (or allocates a fresh one), and the returned Scratch hands the
// buffer back to the cache when it goes out of scope.
//
// Buffers come back DIRTY.  Callers must fully overwrite or zero() what they
// read — that contract is what makes reuse free.  Results stay bit-identical
// across thread counts and arena states because no hot path ever reads a
// word it did not write.
//
// Thread safety: the arena is thread_local, so checkout/release never
// synchronize.  A Scratch must be released on the thread that checked it
// out; the usual pattern is a parallel_for body checking out from its own
// worker's arena.  Pool workers are long-lived (common/parallel.h), so each
// worker's cache persists across operations.
#pragma once

#include <cstring>
#include <utility>
#include <vector>

#include "ntt/kernels.h"

namespace primer {

class PolyArena {
 public:
  // RAII lease on an arena buffer of at least the requested word count.
  class Scratch {
   public:
    Scratch() = default;
    Scratch(PolyArena* arena, AlignedU64 buf, std::size_t words)
        : arena_(arena), buf_(std::move(buf)), words_(words) {}
    Scratch(const Scratch&) = delete;
    Scratch& operator=(const Scratch&) = delete;
    Scratch(Scratch&& o) noexcept
        : arena_(o.arena_), buf_(std::move(o.buf_)), words_(o.words_) {
      o.arena_ = nullptr;
      o.words_ = 0;
    }
    Scratch& operator=(Scratch&& o) noexcept {
      if (this != &o) {
        release();
        arena_ = o.arena_;
        buf_ = std::move(o.buf_);
        words_ = o.words_;
        o.arena_ = nullptr;
        o.words_ = 0;
      }
      return *this;
    }
    ~Scratch() { release(); }

    u64* data() { return buf_.data(); }
    const u64* data() const { return buf_.data(); }
    std::size_t words() const { return words_; }
    bool empty() const { return arena_ == nullptr; }

    // Zeroes the leased words (accumulator init; leased buffers are dirty).
    void zero() {
      if (words_ != 0) std::memset(buf_.data(), 0, words_ * sizeof(u64));
    }

   private:
    void release() {
      if (arena_ != nullptr) {
        arena_->put_back(std::move(buf_));
        arena_ = nullptr;
        words_ = 0;
      }
    }

    PolyArena* arena_ = nullptr;
    AlignedU64 buf_;
    std::size_t words_ = 0;
  };

  // The calling thread's arena.
  static PolyArena& local();

  // Leases a buffer of >= words u64 (contents undefined).
  Scratch checkout(std::size_t words) {
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].size() < words) continue;
      if (best == free_.size() || free_[i].size() < free_[best].size()) {
        best = i;
      }
    }
    if (best == free_.size()) {
      return Scratch(this, AlignedU64(words), words);
    }
    AlignedU64 buf = std::move(free_[best]);
    free_[best] = std::move(free_.back());
    free_.pop_back();
    return Scratch(this, std::move(buf), words);
  }

  // Number of buffers currently cached (tests).
  std::size_t cached() const { return free_.size(); }

 private:
  friend class Scratch;
  void put_back(AlignedU64 buf) { free_.push_back(std::move(buf)); }

  std::vector<AlignedU64> free_;
};

}  // namespace primer
