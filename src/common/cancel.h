// Cooperative cancellation and wall-clock watchdog support.
//
// The protocol engine is a long straight-line computation; a hang (lost
// peer, livelocked retry loop, stuck kernel) would otherwise block forever.
// A CancelToken is a flag that long-running loops poll at natural yield
// points — transport receive loops, protocol step boundaries, thread-pool
// chunk boundaries — and a DeadlineWatchdog arms that flag from a separate
// thread after a wall-clock budget expires.  Cancellation is cooperative:
// code that never reaches a poll point (e.g. a wedged syscall) cannot be
// interrupted, but every protocol phase polls at frame granularity.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace primer {

// Thrown at a poll point after the token was cancelled.  Deliberately not a
// ProtocolError: cancellation is a local decision, not a wire defect, but
// the session layer treats both as retryable.
class OperationCancelled : public std::runtime_error {
 public:
  explicit OperationCancelled(const std::string& what)
      : std::runtime_error("OperationCancelled: " + what) {}
};

class CancelToken {
 public:
  void cancel(std::string reason) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (reason_.empty()) reason_ = std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  std::string reason() const {
    std::lock_guard<std::mutex> lk(mu_);
    return reason_;
  }

  // Throws OperationCancelled if the token fired.  `where` names the poll
  // point so the error localizes the interrupted work.
  void check(const std::string& where) const {
    if (!cancelled()) return;
    throw OperationCancelled(where + ": " + reason());
  }

  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    reason_.clear();
    cancelled_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;
};

// Arms `token` after `budget_s` wall-clock seconds unless destroyed first.
// Scope it around a bounded operation; destruction disarms and joins.
class DeadlineWatchdog {
 public:
  DeadlineWatchdog(CancelToken& token, double budget_s, std::string what)
      : token_(token) {
    if (budget_s <= 0) return;
    thread_ = std::thread([this, budget_s, what = std::move(what)] {
      std::unique_lock<std::mutex> lk(mu_);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(budget_s));
      if (cv_.wait_until(lk, deadline, [this] { return disarmed_; })) return;
      token_.cancel(what + ": wall-clock watchdog expired after " +
                    std::to_string(budget_s) + "s");
    });
  }

  ~DeadlineWatchdog() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  DeadlineWatchdog(const DeadlineWatchdog&) = delete;
  DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

 private:
  CancelToken& token_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

}  // namespace primer
