// Compares the four Primer protocol variants LIVE on the same input — the
// runnable version of the paper's ablation story: watch the online phase
// shrink as HGS/FHGS offloading, tokens-first packing, and CHGS merging are
// switched on.
#include <cstdio>

#include "core/primer_api.h"

using namespace primer;

int main() {
  Rng rng(5);
  const auto weights = quantize(BertWeightsD::random(bert_nano(), rng));
  const std::vector<std::size_t> tokens = {11, 4, 25, 30};
  const FixedBert plain(weights);
  const auto expect = plain.predict(tokens);

  std::printf("BERT-nano, input {11, 4, 25, 30}; plaintext prediction: "
              "class %zu\n\n", expect);
  std::printf("%-12s %11s %11s %11s %9s %8s %6s\n", "variant", "offline(s)",
              "online(s)", "total(s)", "MB", "flights", "pred");

  for (const auto v : {PrimerVariant::kBase, PrimerVariant::kF,
                       PrimerVariant::kFP, PrimerVariant::kFPC}) {
    PrimerEngine engine(weights, v);
    const auto r = engine.run(tokens);
    std::printf("%-12s %11.2f %11.2f %11.2f %9.1f %8llu %6zu\n",
                variant_name(v), r.offline_total_s(), r.online_total_s(),
                r.offline_total_s() + r.online_total_s(),
                static_cast<double>(r.total_bytes) / 1e6,
                static_cast<unsigned long long>(r.rounds), r.predicted);
  }

  std::printf("\nExpected shape (paper Table II): Primer-base pays everything "
              "online;\nPrimer-F/FP/FPC move the heavy HE + garbling work "
              "offline and shrink\nonline latency by orders of magnitude.\n");
  return 0;
}
