// Demonstrates the tokens-first ciphertext packing (paper §III-D) directly
// on the HE API: encrypt a token matrix both ways, run the encrypted
// matmul, and print the rotation counts and timings side by side.
#include <cstdio>

#include "common/timing.h"
#include "proto/packing.h"
#include "ss/secret_share.h"

using namespace primer;

int main() {
  std::printf("Setting up HE context (kProto2048)...\n");
  HeContext ctx(make_params(HeProfile::kProto2048));
  Rng rng(12);
  KeyGenerator keygen(ctx, rng);
  BatchEncoder encoder(ctx);
  Encryptor enc(ctx, keygen.secret_key(), rng);
  Decryptor dec(ctx, keygen.secret_key());
  Evaluator eval(ctx);
  const ShareRing ring(ctx.t());

  // A micro "embedding": 8 tokens, 64-wide vocabulary, 16 output features.
  const std::size_t n = 8, d_in = 64, d_out = 16;

  // Galois keys covering both strategies' BSGS rotation sets.
  std::vector<int> steps;
  for (const auto strategy :
       {PackingStrategy::kFeatureBased, PackingStrategy::kTokensFirst}) {
    const PackedMatmul mm(ctx, encoder, eval, strategy);
    for (const int s : mm.rotation_steps(n)) steps.push_back(s);
  }
  const auto gk = keygen.make_galois_keys(steps);
  const MatI x = ring.random(rng, n, d_in);
  const MatI w = random_fp_matrix(rng, d_in, d_out, -1.0, 1.0);
  std::printf("Encrypted matmul: %zu tokens x %zu features -> %zu outputs\n\n",
              n, d_in, d_out);

  MatI results[2];
  for (int which = 0; which < 2; ++which) {
    const auto strategy = which == 0 ? PackingStrategy::kFeatureBased
                                     : PackingStrategy::kTokensFirst;
    PackedMatmul mm(ctx, encoder, eval, strategy);
    const auto packed = mm.encrypt_input(x, enc);
    PackedMatmulStats stats;
    Stopwatch sw;
    const auto out = mm.multiply(packed, w, n, ctx.t(), gk, &stats);
    const double secs = sw.seconds();
    results[which] = mm.decrypt_result(out, dec, n, d_out);
    std::printf(
        "%-14s: %4llu key-switches (BSGS; sequential walk: %llu), "
        "%4llu plain-mults, %.3f s\n",
        which == 0 ? "feature-based" : "tokens-first",
        static_cast<unsigned long long>(stats.rotations),
        static_cast<unsigned long long>(stats.naive_rotations),
        static_cast<unsigned long long>(stats.plain_mults), secs);
  }
  std::printf("\nresults identical: %s\n",
              results[0] == results[1] ? "yes" : "NO (bug!)");
  std::printf(
      "sequential-schedule reduction factor ~ n = %zu tokens (the paper's "
      "Fig. 6 claim); BSGS + hoisting then compresses both schedules to "
      "~n1+n2 key-switches per rotation set.\n",
      n);
  return 0;
}
