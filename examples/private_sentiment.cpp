// Private sentiment classification (an SST-2-style workload, paper §IV).
//
// Trains a small classifier on a synthetic 3-class "sentiment" task (the
// GLUE substitution documented in DESIGN.md §2), then serves it privately:
// the client submits each review's token ids through the Primer protocol
// and only the client learns the predicted sentiment.  Demonstrates that
// the private predictions agree with the plaintext model — Primer's
// accuracy-preservation claim.
#include <cstdio>

#include "core/primer_api.h"

using namespace primer;

int main() {
  Rng rng(99);
  std::printf("Training sentiment classifier on synthetic data...\n");
  auto weights = BertWeightsD::random(bert_nano(), rng);
  const auto report =
      train_and_evaluate(weights, /*train=*/200, /*test=*/100, /*epochs=*/20,
                         rng);
  std::printf("  plaintext float accuracy : %.1f%%\n",
              100 * report.float_accuracy);
  std::printf("  fixed-point accuracy     : %.1f%%  (Primer arithmetic)\n",
              100 * report.fixed_accuracy);
  std::printf("  THE-X approx accuracy    : %.1f%%  (polynomial baseline)\n\n",
              100 * report.thex_accuracy);

  // Serve the trained model privately.
  auto q = quantize(weights);
  // CHGS requires zero Q/K biases (true for this model by construction).
  PrivateInferenceSession session(q, PrimerVariant::kFP);
  const FixedBert plain(q);

  const char* sentiment[] = {"negative", "neutral", "positive"};
  std::printf("Serving 3 reviews privately (Primer-FP):\n");
  Rng input_rng(7);
  for (int i = 0; i < 3; ++i) {
    std::vector<std::size_t> tokens(bert_nano().tokens);
    for (auto& t : tokens) t = input_rng.uniform(bert_nano().vocab);
    auto result = session.infer(tokens);
    std::printf(
        "  review %d -> %s  (online %.2f s, %.1f MB total; plaintext model "
        "agrees: %s)\n",
        i + 1, sentiment[result.predicted % 3],
        result.run.online_total_s(),
        static_cast<double>(result.run.total_bytes) / 1e6,
        plain.predict(tokens) == result.predicted ? "yes" : "NO");
  }
  std::printf("\nThe server never saw the token ids; the client never saw "
              "the weights.\n");
  return 0;
}
