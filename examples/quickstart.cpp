// Quickstart: one private inference end-to-end.
//
// A "server" holds a BERT-nano model; a "client" holds a token sequence.
// PrivateInferenceSession runs the Primer-FPC protocol between the two
// simulated parties — real RLWE homomorphic encryption for the linear
// algebra, real half-gates garbled circuits for SoftMax/GELU/LayerNorm —
// and neither party sees the other's data.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/primer_api.h"

int main() {
  primer::Rng rng(1);

  std::printf("Creating a random BERT-nano model (server side)...\n");
  auto session = primer::PrivateInferenceSession::create_random_model(
      primer::bert_nano(), primer::PrimerVariant::kFPC, rng);

  const std::vector<std::size_t> tokens = {3, 17, 9, 28};
  std::printf("Client input tokens: 3 17 9 28 (never revealed to server)\n");
  std::printf("Running private inference (offline + online phases)...\n\n");

  auto result = session.infer(tokens);
  std::printf("%s\n", result.report().c_str());

  // The protocol is verifiable: the decrypted logits must match the
  // plaintext fixed-point reference computation.
  const auto expect = session.reference_logits(tokens);
  std::printf("reference check: %s\n",
              result.logits == expect ? "logits match the plaintext model"
                                      : "MISMATCH (bug!)");
  return 0;
}
