// Reproduces Figure 2: latency (offline + online stacked) and accuracy of
// THE-X, GCFormer, Primer-base and Primer-F on MNLI-m with BERT-base.
// Prints the series the figure plots; accuracy columns use the paper's
// measured values (GLUE unavailable offline) — the accuracy ORDER is
// independently reproduced on a synthetic task by bench_accuracy.
#include <cstdio>

#include "proto/cost_model.h"

using namespace primer;

int main() {
  std::printf("Calibrating primitives...\n");
  const PrimitiveCosts pc = PrimitiveCosts::measure();
  const BertConfig cfg = bert_base();

  struct Point {
    CostedScheme scheme;
    double paper_acc;
  };
  const Point points[] = {{CostedScheme::kTheX, 77.3},
                          {CostedScheme::kGcFormer, 85.1},
                          {CostedScheme::kPrimerBase, 84.6},
                          {CostedScheme::kPrimerF, 84.6}};

  std::printf("\n=== Figure 2: latency & accuracy, BERT-base on MNLI-m ===\n");
  std::printf("%-14s %12s %12s %12s %10s\n", "Scheme", "Offline(h)",
              "Online(h)", "Total(h)", "Accuracy");
  double best_total = 1e300, worst_total = 0;
  for (const auto& p : points) {
    const ModelEstimate e = estimate_cost(cfg, p.scheme, pc);
    std::printf("%-14s %12.2f %12.2f %12.2f %9.1f%%\n", scheme_name(p.scheme),
                e.offline_seconds() / 3600, e.online_seconds() / 3600,
                e.total_seconds() / 3600, p.paper_acc);
    best_total = std::min(best_total, e.total_seconds());
    worst_total = std::max(worst_total, e.total_seconds());
  }

  // Figure-shape assertions the paper's Fig. 2 makes visually:
  const auto thex = estimate_cost(cfg, CostedScheme::kTheX, pc);
  const auto gcf = estimate_cost(cfg, CostedScheme::kGcFormer, pc);
  const auto base = estimate_cost(cfg, CostedScheme::kPrimerBase, pc);
  const auto pf = estimate_cost(cfg, CostedScheme::kPrimerF, pc);
  std::printf("\nShape checks:\n");
  std::printf("  GCFormer slower than THE-X        : %s\n",
              gcf.total_seconds() > thex.total_seconds() ? "yes" : "NO");
  std::printf("  Primer-F online << Primer-base online: %.0fx\n",
              base.online_seconds() / pf.online_seconds());
  std::printf("  Primer-F/base accurate (84.6%%) vs THE-X (77.3%%): +7.3 pts "
              "(exact GC non-linearities vs polynomial approx)\n");
  return 0;
}
