// Reproduces Table II: per-step ablation of the Primer techniques on
// BERT-base (n = 30), MNLI-m.  Rows: Primer-base, +FHGS (Primer-F),
// +Pack (Primer-FP), +CHGS (Primer-FPC); columns: Embed, QKV, QxK, SoftMax,
// Atten.Value, Others — offline and online seconds per step.
#include <cstdio>

#include "proto/cost_model.h"

using namespace primer;

namespace {

void print_row(const char* name, const ModelEstimate& e) {
  std::printf("%-12s", name);
  for (const char* step : {"embed", "qkv", "qk", "softmax", "attnv", "others"}) {
    const auto it = e.steps.find(step);
    std::printf(" %9.1f %8.1f", it->second.offline_s, it->second.online_s);
  }
  const auto t = e.total();
  std::printf("  | %9.1f %8.1f\n", t.offline_s, t.online_s);
}

}  // namespace

int main() {
  std::printf("Calibrating primitives...\n");
  const PrimitiveCosts pc = PrimitiveCosts::measure();
  const BertConfig cfg = bert_base();

  std::printf(
      "\n=== Table II: per-step ablation, BERT-base n=30 (offline s / online "
      "s) ===\n");
  std::printf("%-12s %18s %18s %18s %18s %18s %18s  | %18s\n", "Scheme",
              "Embed", "QKV", "QxK", "SoftMax", "Atten.V", "Others", "Total");

  const auto base = estimate_cost(cfg, CostedScheme::kPrimerBase, pc);
  const auto f = estimate_cost(cfg, CostedScheme::kPrimerF, pc);
  const auto fp = estimate_cost(cfg, CostedScheme::kPrimerFP, pc);
  const auto fpc = estimate_cost(cfg, CostedScheme::kPrimerFPC, pc);
  print_row("Primer-base", base);
  print_row("+FHGS", f);
  print_row("+Pack", fp);
  print_row("+CHGS", fpc);

  std::printf("\nAblation claims (paper values in parentheses):\n");
  std::printf("  FHGS online reduction     : %6.1fx  (159x: 6553s -> 41.2s)\n",
              base.online_seconds() / f.online_seconds());
  std::printf("  Packing offline reduction : %6.1fx  (16.1x: 6524s -> 405s)\n",
              f.offline_seconds() / fp.offline_seconds());
  std::printf("  CHGS online reduction     : %6.2fx  (1.10x: 39s -> 35.4s)\n",
              fp.online_seconds() / fpc.online_seconds());
  const double reduction =
      1.0 - (fpc.offline_seconds() + fpc.online_seconds()) /
                (base.offline_seconds() + base.online_seconds());
  std::printf(
      "  Primer vs Primer-base total latency reduction: %5.1f%%  "
      "(paper: 90.6%% ~ 97.5%%)\n",
      100.0 * reduction);
  return 0;
}
