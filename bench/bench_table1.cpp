// Reproduces Table I: comparison of THE-X, GCFormer, Primer-F and
// Primer-FPC on private BERT-base inference (offline / online / total
// seconds + accuracy).
//
// Latency comes from the calibrated operation-count model (measured
// per-primitive costs on this machine at the 128-bit-secure kProd8192
// parameters; see proto/cost_model.h).  Absolute seconds differ from the
// paper's Xeon testbed; the ordering and ratios are the reproduction target.
// Accuracy columns report the paper's measured values (GLUE data is not
// available offline) next to this repo's synthetic-task deltas from
// bench_accuracy.
#include <cstdio>

#include "proto/cost_model.h"

using namespace primer;

int main() {
  std::printf("Calibrating HE/GC primitive costs (kProd8192)...\n");
  const PrimitiveCosts pc = PrimitiveCosts::measure();
  std::printf(
      "  rotation %.3f ms | plain-mult %.3f ms | ct-mult %.3f ms | "
      "garble %.1f ns/AND\n\n",
      pc.rotation * 1e3, pc.plain_mult * 1e3, pc.ct_mult * 1e3,
      pc.gc_garble_and * 1e9);

  const BertConfig cfg = bert_base();
  std::printf("=== Table I: private BERT-base inference (MNLI-m) ===\n");
  std::printf("%-14s %12s %12s %12s %10s %22s\n", "Scheme", "Offline(s)",
              "Online(s)", "Total(s)", "PaperAcc", "Paper(off/on s)");
  const CostedScheme schemes[] = {CostedScheme::kTheX, CostedScheme::kGcFormer,
                                  CostedScheme::kPrimerF,
                                  CostedScheme::kPrimerFPC};
  double prev_total = 0;
  for (const auto s : schemes) {
    const ModelEstimate e = estimate_cost(cfg, s, pc);
    const PaperNumbers p = paper_table1(s);
    std::printf("%-14s %12.1f %12.1f %12.1f %9.1f%% %10.0f/%8.0f\n",
                scheme_name(s), e.offline_seconds(), e.online_seconds(),
                e.total_seconds(), p.accuracy, p.offline_s, p.online_s);
    prev_total = e.total_seconds();
  }
  (void)prev_total;

  // Headline claims.
  const auto thex = estimate_cost(cfg, CostedScheme::kTheX, pc);
  const auto gcf = estimate_cost(cfg, CostedScheme::kGcFormer, pc);
  const auto pf = estimate_cost(cfg, CostedScheme::kPrimerF, pc);
  const auto fpc = estimate_cost(cfg, CostedScheme::kPrimerFPC, pc);
  std::printf("\nHeadline ratios (paper in parentheses):\n");
  std::printf("  Primer total vs THE-X     : %5.1fx faster   (10.7x)\n",
              thex.total_seconds() / fpc.total_seconds());
  std::printf("  Primer total vs GCFormer  : %5.1fx faster   (39.3x)\n",
              gcf.total_seconds() / fpc.total_seconds());
  std::printf("  Primer-FPC vs Primer-F    : %5.1fx faster   (14.9x)\n",
              pf.total_seconds() / fpc.total_seconds());
  std::printf("  Primer online vs THE-X    : %5.1fx faster   (132.8x)\n",
              thex.online_seconds() / fpc.online_seconds());
  return 0;
}
