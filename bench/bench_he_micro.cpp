// HE substrate microbenchmarks (google-benchmark): NTT, encryption,
// decryption, homomorphic add / plain-mult / ct-mult / rotation across the
// parameter profiles.  These are the primitive costs the table benches
// compose; also the ablation data for the n=4096 vs n=8192 parameter choice
// (DESIGN.md §5.5).
#include <benchmark/benchmark.h>

#include "he/encoder.h"
#include "he/he.h"
#include "ntt/ntt.h"
#include "ntt/primes.h"

using namespace primer;

namespace {

struct HeFixture {
  explicit HeFixture(HeProfile profile)
      : ctx(make_params(profile)),
        rng(1),
        keygen(ctx, rng),
        encoder(ctx),
        enc(ctx, keygen.secret_key(), rng),
        dec(ctx, keygen.secret_key()),
        eval(ctx),
        gk(keygen.make_galois_keys({1})),
        rk(keygen.make_relin_key()) {
    std::vector<u64> vals(encoder.slot_count());
    rng.fill_uniform_mod(vals, ctx.t());
    pt = encoder.encode(vals);
    ct = enc.encrypt(pt);
    ct2 = enc.encrypt(pt);
  }
  HeContext ctx;
  Rng rng;
  KeyGenerator keygen;
  BatchEncoder encoder;
  Encryptor enc;
  Decryptor dec;
  Evaluator eval;
  GaloisKeys gk;
  RelinKey rk;
  Plaintext pt;
  Ciphertext ct, ct2;
};

HeFixture& fixture(int profile) {
  static HeFixture test2048{HeProfile::kTest2048};
  static HeFixture light4096{HeProfile::kLight4096};
  static HeFixture prod8192{HeProfile::kProd8192};
  switch (profile) {
    case 0: return test2048;
    case 1: return light4096;
    default: return prod8192;
  }
}

void BM_NttForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u64 p = generate_ntt_primes(50, n, 1)[0];
  const Ntt ntt(n, p);
  Rng rng(2);
  std::vector<u64> a(n);
  rng.fill_uniform_mod(a, p);
  for (auto _ : state) {
    ntt.forward(a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_NttForward)->Arg(2048)->Arg(4096)->Arg(8192);

void BM_Encrypt(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(f.enc.encrypt(f.pt));
  state.SetLabel(f.ctx.params().name);
}
BENCHMARK(BM_Encrypt)->Arg(0)->Arg(1)->Arg(2);

void BM_Decrypt(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(f.dec.decrypt(f.ct));
  state.SetLabel(f.ctx.params().name);
}
BENCHMARK(BM_Decrypt)->Arg(0)->Arg(1)->Arg(2);

void BM_Add(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Ciphertext a = f.ct;
    f.eval.add_inplace(a, f.ct2);
    benchmark::DoNotOptimize(a);
  }
  state.SetLabel(f.ctx.params().name);
}
BENCHMARK(BM_Add)->Arg(0)->Arg(1)->Arg(2);

void BM_MultiplyPlain(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Ciphertext a = f.ct;
    f.eval.multiply_plain_inplace(a, f.pt);
    benchmark::DoNotOptimize(a);
  }
  state.SetLabel(f.ctx.params().name);
}
BENCHMARK(BM_MultiplyPlain)->Arg(0)->Arg(1)->Arg(2);

void BM_Rotate(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Ciphertext a = f.ct;
    f.eval.rotate_rows_inplace(a, 1, f.gk);
    benchmark::DoNotOptimize(a);
  }
  state.SetLabel(f.ctx.params().name);
}
BENCHMARK(BM_Rotate)->Arg(0)->Arg(1)->Arg(2);

void BM_CtCtMultiplyRelin(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Ciphertext a = f.eval.multiply(f.ct, f.ct2);
    f.eval.relinearize_inplace(a, f.rk);
    benchmark::DoNotOptimize(a);
  }
  state.SetLabel(f.ctx.params().name);
}
BENCHMARK(BM_CtCtMultiplyRelin)->Arg(0)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
