// HE substrate microbenchmarks: NTT, encryption, decryption, homomorphic
// add / plain-mult / rotation / ct-mult across the parameter profiles, swept
// over thread counts and NTT kernel sets.
//
// Usage:
//   bench_he_micro [--threads 1,2,4]
//                  [--kernel scalar,avx2,avx512,avx512ifma] [--reps N]
//                  [--min-time SECONDS] [--json]
//
// Each measurement reports wall-clock seconds, aggregate process CPU
// seconds (so speedup-vs-threads and parallel efficiency are measurable),
// and throughput.  Machine-readable JSON lines (prefixed "JSON ") are
// emitted alongside the human table for the bench trajectory; --json
// suppresses the human-readable lines.  --kernel re-runs the suite once per
// kernel set (via the PRIMER_NTT_KERNEL override); every JSON line carries
// the kernel it ran on.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fixed_point.h"
#include "common/parallel.h"
#include "common/timing.h"
#include "he/encoder.h"
#include "he/he.h"
#include "net/channel.h"
#include "net/frame.h"
#include "net/framed_channel.h"
#include "net/session_fs.h"
#include "ntt/kernels.h"
#include "ntt/ntt.h"
#include "ntt/primes.h"
#include "nn/model.h"
#include "proto/packing.h"
#include "proto/primer.h"
#include "ss/secret_share.h"

using namespace primer;

namespace {

struct Options {
  std::vector<std::size_t> threads;
  std::vector<std::string> kernels;  // empty -> automatic dispatch only
  int reps = 3;             // batch repetitions per timed sample
  double min_time = 0.05;   // seconds of sampling per benchmark
  bool json_only = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (bench::match_threads_flag(argc, argv, i, opt.threads)) {
      continue;
    } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string k = list.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (!k.empty()) opt.kernels.push_back(k);
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_only = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      opt.reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
      opt.min_time = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (opt.threads.empty()) opt.threads = {num_threads()};
  if (opt.reps < 1) opt.reps = 1;
  if (opt.min_time < 0.0) opt.min_time = 0.0;
  return opt;
}

// Runs `op` until min_time elapses; reports per-op wall/CPU seconds.
void run_bench(const char* name, const char* label, const char* kernel,
               std::size_t threads, const Options& opt,
               const std::function<void()>& op) {
  op();  // warm-up (twiddle caches, allocator)
  std::uint64_t iters = 0;
  CpuWallTimer timer;
  do {
    for (int r = 0; r < opt.reps; ++r) op();
    iters += static_cast<std::uint64_t>(opt.reps);
  } while (timer.wall_seconds() < opt.min_time);
  const double wall = timer.wall_seconds();
  const double cpu = timer.cpu_seconds();
  const double per_op = wall / static_cast<double>(iters);
  if (!opt.json_only) {
    std::printf(
        "%-24s %-10s kernel=%-6s threads=%zu %10.6fs/op %8.1f ops/s  "
        "cpu/wall=%4.2f\n",
        name, label, kernel, threads, per_op,
        per_op > 0 ? 1.0 / per_op : 0.0, wall > 0 ? cpu / wall : 0.0);
  }
  std::printf(
      "JSON {\"bench\":\"%s\",\"label\":\"%s\",\"kernel\":\"%s\","
      "\"threads\":%zu,\"iters\":%llu,\"wall_s\":%.6f,\"cpu_s\":%.6f,"
      "\"wall_s_per_op\":%.9f,\"ops_per_s\":%.3f}\n",
      name, label, kernel, threads, static_cast<unsigned long long>(iters),
      wall, cpu, per_op, per_op > 0 ? 1.0 / per_op : 0.0);
}

struct HeFixture {
  explicit HeFixture(HeProfile profile)
      : ctx(make_params(profile)),
        rng(1),
        keygen(ctx, rng),
        encoder(ctx),
        enc(ctx, keygen.secret_key(), rng),
        dec(ctx, keygen.secret_key()),
        eval(ctx),
        gk(keygen.make_galois_keys({1})),
        rk(keygen.make_relin_key()) {
    std::vector<u64> vals(encoder.slot_count());
    rng.fill_uniform_mod(vals, ctx.t());
    pt = encoder.encode(vals);
    ct = enc.encrypt(pt);
    ct2 = enc.encrypt(pt);
  }
  HeContext ctx;
  Rng rng;
  KeyGenerator keygen;
  BatchEncoder encoder;
  Encryptor enc;
  Decryptor dec;
  Evaluator eval;
  GaloisKeys gk;
  RelinKey rk;
  Plaintext pt;
  Ciphertext ct, ct2;
};

void bench_ntt(std::size_t threads, const Options& opt) {
  for (const std::size_t n : {std::size_t{2048}, std::size_t{4096},
                              std::size_t{8192}}) {
    const u64 p = generate_ntt_primes(50, n, 1)[0];
    const Ntt ntt(n, p);
    Rng rng(2);
    char label[32];
    std::snprintf(label, sizeof label, "n=%zu", n);

    // Single transform: the per-core kernel cost the vector tiers target.
    std::vector<u64> poly(n);
    rng.fill_uniform_mod(poly, p);
    run_bench("ntt_forward", label, ntt.kernel_name(), threads, opt,
              [&] { ntt.forward(poly.data()); });
    // Lazy-output forward (key-switch digit staging): skips the final
    // [0, p) correction sweep.  Outputs stay < 4p, valid NTT inputs.
    run_bench("ntt_forward_lazy", label, ntt.kernel_name(), threads, opt,
              [&] { ntt.forward_lazy_out(poly.data()); });
    // Restore canonical range before the inverse bench.
    ntt.kernel().reduce_span(poly.data(), poly.data(), n, p,
                             Barrett(p).ratio_hi());
    run_bench("ntt_inverse", label, ntt.kernel_name(), threads, opt,
              [&] { ntt.inverse(poly.data()); });

    // A batch models the independent polynomials of a bulk transform (RNS
    // limbs x ciphertexts); larger than any thread count we sweep.
    std::vector<std::vector<u64>> batch(16, std::vector<u64>(n));
    for (auto& b : batch) rng.fill_uniform_mod(b, p);
    run_bench("ntt_forward_batch16", label, ntt.kernel_name(), threads, opt,
              [&] { ntt.forward_batch(batch); });
  }
}

// Every entry of the dispatch table on n=4096 spans, so the --kernel sweep
// benchmarks scalar/AVX2 parity for the FULL kernel surface — the limb ops
// and the key-switch kernels (reduce_span / mul_acc_lazy / reduce_acc_span)
// — not just the NTT butterflies.
void bench_kernel_table(std::size_t threads, const Options& opt) {
  const std::size_t n = 4096;
  const u64 p = generate_ntt_primes(50, n, 1)[0];
  const NttKernel& kern = dispatch_kernel(p);
  const Barrett br(p);
  Rng rng(5);
  std::vector<u64> a(n), b(n), out(n), lo(n), hi(n);
  rng.fill_uniform_mod(a, p);
  rng.fill_uniform_mod(b, p);
  // Arbitrary 64-bit inputs for the re-reduction kernel.
  std::vector<u64> wide(n);
  for (auto& v : wide) {
    v = (rng.uniform(u64{1} << 32) << 32) | rng.uniform(u64{1} << 32);
  }
  const char* label = "n=4096";
  run_bench("kernel_add", label, kern.name, threads, opt,
            [&] { kern.add(out.data(), a.data(), b.data(), n, p); });
  run_bench("kernel_sub", label, kern.name, threads, opt,
            [&] { kern.sub(out.data(), a.data(), b.data(), n, p); });
  run_bench("kernel_neg", label, kern.name, threads, opt,
            [&] { kern.neg(out.data(), a.data(), n, p); });
  run_bench("kernel_mul", label, kern.name, threads, opt, [&] {
    kern.mul(out.data(), a.data(), b.data(), n, p, br.ratio_hi(),
             br.ratio_lo());
  });
  run_bench("kernel_mul_acc", label, kern.name, threads, opt, [&] {
    kern.mul_acc(out.data(), a.data(), b.data(), n, p, br.ratio_hi(),
                 br.ratio_lo());
  });
  const ShoupMul sm(a[0], p, kern.shoup_shift);
  run_bench("kernel_scalar_mul", label, kern.name, threads, opt, [&] {
    kern.scalar_mul(out.data(), a.data(), n, sm.operand, sm.quotient, p);
  });
  run_bench("kernel_reduce_span", label, kern.name, threads, opt, [&] {
    kern.reduce_span(out.data(), wide.data(), n, p, br.ratio_hi());
  });
  run_bench("kernel_mul_acc_lazy", label, kern.name, threads, opt, [&] {
    std::memset(lo.data(), 0, n * sizeof(u64));
    std::memset(hi.data(), 0, n * sizeof(u64));
    for (int d = 0; d < 3; ++d) {
      kern.mul_acc_lazy(lo.data(), hi.data(), a.data(), b.data(), n);
    }
  });
  // Accumulator state for the closing sweep (3 products: within bound).
  std::memset(lo.data(), 0, n * sizeof(u64));
  std::memset(hi.data(), 0, n * sizeof(u64));
  for (int d = 0; d < 3; ++d) {
    kern.mul_acc_lazy(lo.data(), hi.data(), a.data(), b.data(), n);
  }
  run_bench("kernel_reduce_acc_span", label, kern.name, threads, opt, [&] {
    kern.reduce_acc_span(out.data(), lo.data(), hi.data(), n, p,
                         br.ratio_hi(), br.ratio_lo());
  });
  // Quotient tables in the dispatched kernel's own Shoup convention
  // (floor(w * 2^shoup_shift / p): 64 for scalar/avx2/avx512, 52 for
  // avx512ifma).
  std::vector<u64> a_shoup(n), b_shoup(n);
  for (std::size_t i = 0; i < n; ++i) {
    a_shoup[i] =
        static_cast<u64>((static_cast<u128>(a[i]) << kern.shoup_shift) / p);
    b_shoup[i] =
        static_cast<u64>((static_cast<u128>(b[i]) << kern.shoup_shift) / p);
  }
  std::vector<u64> lane(n, 0), lane2(n, 0);
  run_bench("kernel_shoup_mul_acc_lazy2", label, kern.name, threads, opt,
            [&] {
              kern.shoup_mul_acc_lazy2(lane.data(), lane2.data(), out.data(),
                                       b.data(), b_shoup.data(), a.data(),
                                       a_shoup.data(), n, p);
            });
  run_bench("kernel_add_reduce2p", label, kern.name, threads, opt, [&] {
    kern.add_reduce2p(out.data(), a.data(), lane.data(), n, p);
  });
}

// Key-switching data path on the acceptance shape (n=4096, k=3 limbs):
// the raw key_switch primitive, rotations, and the BSGS packed matmul the
// protocols drive it through.
HeParams keyswitch_params() {
  HeParams p;
  p.poly_degree = 4096;
  p.q = generate_ntt_primes(50, p.poly_degree, 3);
  p.t = first_ntt_prime_at_least(u64{1} << 38, p.poly_degree);
  p.name = "ks-4096x3";
  return p;
}

// The PR 3 key_switch data path, kept verbatim as the measured baseline the
// fused implementation is compared against: per-coefficient Barrett
// re-reduction, heap-allocated digit polynomials, and a full modular
// reduction on every accumulate.  Like PR 3's relinearize, the entry point
// is the ciphertext-resident NTT form, so the to_coeff conversion that
// implementation required is part of its measured cost (the fused path
// absorbs the same conversion internally).
void seedref_key_switch(const HeContext& ctx, const RnsPoly& c_ntt,
                        const KSwitchKey& key, RnsPoly& acc0, RnsPoly& acc1) {
  const std::size_t k = ctx.rns_size();
  const std::size_t n = ctx.degree();
  RnsPoly c_coeff = c_ntt;
  ctx.to_coeff(c_coeff);
  std::vector<RnsPoly> digit_b(k), digit_a(k);
  parallel_for(0, k, [&](std::size_t i) {
    RnsPoly digit(k, n, false);
    const u64* src = c_coeff.limb(i);
    for (std::size_t j = 0; j < k; ++j) {
      const Barrett& br = ctx.barrett(j);
      u64* dst = digit.limb(j);
      for (std::size_t c = 0; c < n; ++c) {
        dst[c] = br.reduce(src[c]);
      }
    }
    ctx.to_ntt(digit);
    digit_b[i] = ctx.multiply(digit, key.b[i]);
    ctx.multiply_inplace(digit, key.a[i]);
    digit_a[i] = std::move(digit);
  });
  for (std::size_t i = 0; i < k; ++i) {
    ctx.add_inplace(acc0, digit_b[i]);
    ctx.add_inplace(acc1, digit_a[i]);
  }
}

void bench_keyswitch(std::size_t threads, const Options& opt) {
  const HeContext ctx(keyswitch_params());
  Rng rng(3);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Evaluator eval(ctx);
  const RelinKey rk = keygen.make_relin_key();
  const char* kernel = ctx.kernel_name();
  const std::size_t k = ctx.rns_size();
  const std::size_t n = ctx.degree();

  // Raw key_switch on an NTT-form polynomial — the ciphertext-resident
  // shape relinearization and rotations feed it.
  RnsPoly c(k, n, false);
  for (std::size_t i = 0; i < k; ++i) {
    rng.fill_uniform_mod(c.limb(i), n, ctx.q(i));
  }
  ctx.to_ntt(c);
  RnsPoly acc0(k, n, true), acc1(k, n, true);
  run_bench("key_switch", "n=4096 k=3", kernel, threads, opt,
            [&] { eval.key_switch(c, rk.key, acc0, acc1); });
  // The same digits through the PR 3 reference path.  The fused/seedref
  // ops_per_s ratio is the key-switch speedup this layer claims.
  run_bench("key_switch_seedref", "n=4096 k=3", kernel, threads, opt,
            [&] { seedref_key_switch(ctx, c, rk.key, acc0, acc1); });

  // Rotation set of 8 steps on a fresh ciphertext: the per-rotation naive
  // path versus the hoisted set sharing one digit decomposition.
  std::vector<int> steps;
  for (int s = 1; s <= 8; ++s) steps.push_back(s);
  const GaloisKeys gk = keygen.make_galois_keys(steps);
  std::vector<u64> vals(encoder.slot_count());
  rng.fill_uniform_mod(vals, ctx.t());
  const Ciphertext ct = enc.encrypt(encoder.encode(vals));
  run_bench("rotations8_naive", "n=4096 k=3", kernel, threads, opt, [&] {
    for (const int s : steps) {
      Ciphertext a = ct;
      eval.rotate_rows_inplace(a, s, gk);
    }
  });
  run_bench("rotations8_hoisted", "n=4096 k=3", kernel, threads, opt, [&] {
    const auto rots = eval.rotate_rows_many(ct, steps, gk);
    (void)rots;
  });
}

void bench_packed_matmul(std::size_t threads, const Options& opt) {
  const HeContext ctx(keyswitch_params());
  Rng rng(4);
  KeyGenerator keygen(ctx, rng);
  const BatchEncoder encoder(ctx);
  const Encryptor enc(ctx, keygen.secret_key(), rng);
  const Evaluator eval(ctx);
  const char* kernel = ctx.kernel_name();

  const std::size_t tokens = 8, d_in = 64, d_out = 32;
  PackedMatmul mm(ctx, encoder, eval, PackingStrategy::kTokensFirst);
  const GaloisKeys gk =
      keygen.make_galois_keys(mm.rotation_steps(tokens));
  const ShareRing ring(ctx.t());
  const MatI x = ring.random(rng, tokens, d_in);
  const MatI w = random_fp_matrix(rng, d_in, d_out, -1.0, 1.0);
  const auto packed = mm.encrypt_input(x, enc);
  run_bench("packed_matmul", "tf 8x64x32", kernel, threads, opt, [&] {
    const auto out = mm.multiply(packed, w, tokens, ctx.t(), gk, nullptr);
    (void)out;
  });
}

void bench_he(HeFixture& f, const char* label, std::size_t threads,
              const Options& opt, bool with_ct_mult) {
  const char* kernel = f.ctx.kernel_name();
  run_bench("encrypt", label, kernel, threads, opt,
            [&] { Ciphertext out = f.enc.encrypt(f.pt); (void)out; });
  run_bench("decrypt", label, kernel, threads, opt,
            [&] { Plaintext out = f.dec.decrypt(f.ct); (void)out; });
  run_bench("add", label, kernel, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.add_inplace(a, f.ct2);
  });
  run_bench("multiply_plain", label, kernel, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.multiply_plain_inplace(a, f.pt);
  });
  run_bench("multiply_plain_acc", label, kernel, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.multiply_plain_accumulate(a, f.ct2, f.pt);
  });
  run_bench("rotate", label, kernel, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.rotate_rows_inplace(a, 1, f.gk);
  });
  if (with_ct_mult) {
    run_bench("ct_mult_relin", label, kernel, threads, opt, [&] {
      Ciphertext a = f.eval.multiply(f.ct, f.ct2);
      f.eval.relinearize_inplace(a, f.rk);
    });
  }
}

// Transport-framing overhead: a serialized ciphertext pushed through the
// simulated channel raw vs framed (24-byte header + CRC32C + retry
// bookkeeping), and the same payload inside a mini encrypt -> ship ->
// decrypt exchange so the delta can be stated against end-to-end work.  The
// bench-trajectory gate (tools/check_framing_overhead.py) asserts the
// end-to-end ratio stays under 2%.
void bench_framing(HeFixture& f, const char* label, const Options& opt) {
  ByteWriter w;
  f.eval.serialize(f.ct, w);
  const std::vector<std::uint8_t> payload = w.take();

  const auto time_loop = [&](const std::function<void()>& op) {
    op();  // warm-up
    std::uint64_t iters = 0;
    CpuWallTimer timer;
    do {
      for (int r = 0; r < opt.reps; ++r) op();
      iters += static_cast<std::uint64_t>(opt.reps);
    } while (timer.wall_seconds() < opt.min_time);
    return timer.wall_seconds() / static_cast<double>(iters);
  };

  Channel raw_ch;
  const double raw_s = time_loop([&] {
    raw_ch.send(Party::kClient, payload);
    (void)raw_ch.recv(Party::kServer);
  });
  Channel framed_base;
  FramedChannel framed(framed_base, FaultSpec{}, RetryPolicy{});
  const double framed_s = time_loop([&] {
    framed.send(Party::kClient, MessageKind::kCiphertexts, payload);
    (void)framed.recv_expect(Party::kServer, MessageKind::kCiphertexts);
  });

  // Project the per-byte framing cost onto a real inference: one live nano
  // kFP run (which already ships every message framed) supplies the actual
  // bytes moved and the actual compute spent, so the reported end-to-end
  // ratio is (framing cost for that much traffic) / (that run's compute).
  const double delta_per_byte =
      payload.empty() ? 0.0
                      : (framed_s - raw_s) / static_cast<double>(payload.size());
  Rng weight_rng(2025);
  PrimerEngine engine(quantize(BertWeightsD::random(bert_nano(), weight_rng)),
                      PrimerVariant::kFP, HeProfile::kProto2048);
  const PrimerRunResult run = engine.run({3, 17, 9, 28});
  // The run already ships framed traffic, so the 24-byte headers are billed
  // into its network seconds; the only unaccounted framing cost is the CPU
  // delta (checksum + copy) measured above.  End-to-end = compute + modeled
  // network latency, which is what the cost model exists to report.
  const double run_e2e_s = run.offline_total_s() + run.online_total_s();
  const double framing_cost_s =
      delta_per_byte * static_cast<double>(run.total_bytes);
  const double e2e_ratio = run_e2e_s > 0.0 ? framing_cost_s / run_e2e_s : 0.0;

  // Session-resilience overhead: the same inference with checkpointing and
  // the resume handshake on.  The only extra wire traffic is the two
  // handshake frames (checkpoints are persisted locally, never shipped), and
  // the only extra CPU is checkpoint serialization, micro-measured below —
  // both deterministic, so the <2% gate cannot flake on host noise.
  Rng weight_rng2(2025);
  PrimerEngine resilient(
      quantize(BertWeightsD::random(bert_nano(), weight_rng2)),
      PrimerVariant::kFP, HeProfile::kProto2048);
  SessionStore store;
  const PrimerRunResult rrun = resilient.run_resilient({3, 17, 9, 28}, store);
  const auto cp = store.load(Party::kClient,
                             store.latest_epoch(Party::kClient));
  const double cp_serialize_s = time_loop([&] {
    ByteWriter cw;
    cp->serialize(cw);
    (void)cw.take();
  });
  const NetworkModel net;
  const double session_cost_s =
      2.0 * net.one_way_delay_s +
      static_cast<double>(rrun.handshake_bytes) / net.bandwidth_bytes_per_s +
      2.0 * cp_serialize_s * static_cast<double>(rrun.checkpoints);
  const double session_ratio =
      run_e2e_s > 0.0 ? session_cost_s / run_e2e_s : 0.0;

  // Durable-storage overhead: the same resilient run persisting every
  // checkpoint through the crash-consistent store (serialize -> temp ->
  // fsync -> rename -> dir fsync).  The micro-measured durable save
  // replaces the bare serialization in the session cost — real fsyncs
  // included — so the gate bounds the full price of surviving SIGKILL.
  char dir_tmpl[] = "bench_durable_XXXXXX";
  double durable_save_s = 0.0;
  double durable_cost_s = 0.0;
  double durable_ratio = 0.0;
  SessionStore::Telemetry dtel{};
  std::size_t durable_blob_bytes = 0;
  if (mkdtemp(dir_tmpl) != nullptr) {
    const std::string store_dir = dir_tmpl;
    Rng weight_rng3(2025);
    PrimerEngine durable_engine(
        quantize(BertWeightsD::random(bert_nano(), weight_rng3)),
        PrimerVariant::kFP, HeProfile::kProto2048);
    DurableSessionStore dstore(store_dir);
    const PrimerRunResult drun =
        durable_engine.run_resilient({3, 17, 9, 28}, dstore);
    const auto dcp = dstore.load(Party::kClient,
                                 dstore.latest_epoch(Party::kClient));
    durable_save_s = time_loop([&] { dstore.save(Party::kClient, *dcp); });
    dtel = dstore.telemetry();
    durable_blob_bytes = dstore.blob_bytes();
    durable_cost_s =
        2.0 * net.one_way_delay_s +
        static_cast<double>(drun.handshake_bytes) / net.bandwidth_bytes_per_s +
        2.0 * durable_save_s * static_cast<double>(drun.checkpoints);
    durable_ratio = run_e2e_s > 0.0 ? durable_cost_s / run_e2e_s : 0.0;
    std::system(("rm -rf " + store_dir).c_str());
  }

  const double byte_ratio =
      static_cast<double>(FrameHeader::kWireSize) /
      static_cast<double>(payload.size() + FrameHeader::kWireSize);
  if (!opt.json_only) {
    std::printf(
        "%-24s %-10s payload=%zuB header=%zuB bytes+%.4f%%  "
        "raw=%.9fs framed=%.9fs  e2e+%.4f%%  session+%.4f%%  "
        "durable+%.4f%%\n",
        "framing_overhead", label, payload.size(),
        static_cast<std::size_t>(FrameHeader::kWireSize), 100.0 * byte_ratio,
        raw_s, framed_s, 100.0 * e2e_ratio, 100.0 * session_ratio,
        100.0 * durable_ratio);
  }
  std::printf(
      "JSON {\"bench\":\"framing_overhead\",\"label\":\"%s\",\"kernel\":\"%s\","
      "\"threads\":1,\"payload_bytes\":%zu,\"frame_header_bytes\":%zu,"
      "\"byte_overhead_ratio\":%.9f,\"raw_wall_s_per_op\":%.9f,"
      "\"framed_wall_s_per_op\":%.9f,\"wall_delta_s_per_op\":%.9f,"
      "\"run_total_bytes\":%llu,\"run_e2e_s\":%.6f,"
      "\"framing_cost_s\":%.6f,\"e2e_overhead_ratio\":%.9f,"
      "\"session_checkpoints\":%u,\"session_handshake_bytes\":%llu,"
      "\"session_store_bytes\":%zu,\"session_checkpoint_serialize_s\":%.9f,"
      "\"session_cost_s\":%.6f,\"session_e2e_overhead_ratio\":%.9f,"
      "\"durable_save_s_per_checkpoint\":%.9f,"
      "\"durable_bytes_written\":%llu,\"durable_fsyncs\":%llu,"
      "\"durable_blob_bytes\":%zu,\"durable_cost_s\":%.6f,"
      "\"session_durable_overhead_ratio\":%.9f}\n",
      label, f.ctx.kernel_name(), payload.size(),
      static_cast<std::size_t>(FrameHeader::kWireSize), byte_ratio, raw_s,
      framed_s, framed_s - raw_s,
      static_cast<unsigned long long>(run.total_bytes), run_e2e_s,
      framing_cost_s, e2e_ratio, rrun.checkpoints,
      static_cast<unsigned long long>(rrun.handshake_bytes),
      store.blob_bytes(), cp_serialize_s, session_cost_s, session_ratio,
      durable_save_s, static_cast<unsigned long long>(dtel.bytes_written),
      static_cast<unsigned long long>(dtel.fsyncs), durable_blob_bytes,
      durable_cost_s, durable_ratio);
}

void run_suite(const Options& opt) {
  HeFixture test2048(HeProfile::kTest2048);
  HeFixture light4096(HeProfile::kLight4096);
  HeFixture prod8192(HeProfile::kProd8192);

  // The kernel-table sweep calls the dispatch-table function pointers
  // directly (no pooled work), so it runs once per suite, not per thread
  // count.
  bench_kernel_table(1, opt);
  // Channel work is single-threaded; one pass per suite like the kernel
  // table.
  bench_framing(test2048, "test2048", opt);
  for (const std::size_t t : opt.threads) {
    set_num_threads(t);
    if (!opt.json_only) std::printf("--- threads = %zu ---\n", t);
    bench_ntt(t, opt);
    bench_keyswitch(t, opt);
    bench_packed_matmul(t, opt);
    bench_he(test2048, "test2048", t, opt, /*with_ct_mult=*/true);
    bench_he(light4096, "light4096", t, opt, /*with_ct_mult=*/false);
    bench_he(prod8192, "prod8192", t, opt, /*with_ct_mult=*/true);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  if (!opt.json_only) {
    std::printf("hardware threads: %zu\n", hardware_threads());
  }
  if (opt.kernels.empty()) {
    run_suite(opt);
    return 0;
  }
  for (const std::string& kernel : opt.kernels) {
    // The override is read at Ntt/HeContext construction, so each sweep
    // iteration rebuilds its fixtures under the requested kernel.
    ::setenv("PRIMER_NTT_KERNEL", kernel.c_str(), 1);
    if (!opt.json_only) {
      std::printf("=== kernel = %s ===\n", kernel.c_str());
    }
    run_suite(opt);
  }
  return 0;
}
