// HE substrate microbenchmarks: NTT, encryption, decryption, homomorphic
// add / plain-mult / rotation / ct-mult across the parameter profiles, swept
// over thread counts.
//
// Usage:
//   bench_he_micro [--threads 1,2,4] [--reps N] [--min-time SECONDS]
//
// Each measurement reports wall-clock seconds, aggregate process CPU
// seconds (so speedup-vs-threads and parallel efficiency are measurable),
// and throughput.  Machine-readable JSON lines (prefixed "JSON ") are
// emitted alongside the human table for the bench trajectory.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/timing.h"
#include "he/encoder.h"
#include "he/he.h"
#include "ntt/ntt.h"
#include "ntt/primes.h"

using namespace primer;

namespace {

struct Options {
  std::vector<std::size_t> threads;
  int reps = 3;             // batch repetitions per timed sample
  double min_time = 0.05;   // seconds of sampling per benchmark
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (bench::match_threads_flag(argc, argv, i, opt.threads)) {
      continue;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      opt.reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
      opt.min_time = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (opt.threads.empty()) opt.threads = {num_threads()};
  if (opt.reps < 1) opt.reps = 1;
  if (opt.min_time < 0.0) opt.min_time = 0.0;
  return opt;
}

// Runs `op` until min_time elapses; reports per-op wall/CPU seconds.
void run_bench(const char* name, const char* label, std::size_t threads,
               const Options& opt, const std::function<void()>& op) {
  op();  // warm-up (twiddle caches, allocator)
  std::uint64_t iters = 0;
  CpuWallTimer timer;
  do {
    for (int r = 0; r < opt.reps; ++r) op();
    iters += static_cast<std::uint64_t>(opt.reps);
  } while (timer.wall_seconds() < opt.min_time);
  const double wall = timer.wall_seconds();
  const double cpu = timer.cpu_seconds();
  const double per_op = wall / static_cast<double>(iters);
  std::printf("%-24s %-10s threads=%zu %10.6fs/op %8.1f ops/s  cpu/wall=%4.2f\n",
              name, label, threads, per_op,
              per_op > 0 ? 1.0 / per_op : 0.0, wall > 0 ? cpu / wall : 0.0);
  std::printf(
      "JSON {\"bench\":\"%s\",\"label\":\"%s\",\"threads\":%zu,"
      "\"iters\":%llu,\"wall_s\":%.6f,\"cpu_s\":%.6f,"
      "\"wall_s_per_op\":%.9f,\"ops_per_s\":%.3f}\n",
      name, label, threads, static_cast<unsigned long long>(iters), wall, cpu,
      per_op, per_op > 0 ? 1.0 / per_op : 0.0);
}

struct HeFixture {
  explicit HeFixture(HeProfile profile)
      : ctx(make_params(profile)),
        rng(1),
        keygen(ctx, rng),
        encoder(ctx),
        enc(ctx, keygen.secret_key(), rng),
        dec(ctx, keygen.secret_key()),
        eval(ctx),
        gk(keygen.make_galois_keys({1})),
        rk(keygen.make_relin_key()) {
    std::vector<u64> vals(encoder.slot_count());
    rng.fill_uniform_mod(vals, ctx.t());
    pt = encoder.encode(vals);
    ct = enc.encrypt(pt);
    ct2 = enc.encrypt(pt);
  }
  HeContext ctx;
  Rng rng;
  KeyGenerator keygen;
  BatchEncoder encoder;
  Encryptor enc;
  Decryptor dec;
  Evaluator eval;
  GaloisKeys gk;
  RelinKey rk;
  Plaintext pt;
  Ciphertext ct, ct2;
};

void bench_ntt(std::size_t threads, const Options& opt) {
  for (const std::size_t n : {std::size_t{2048}, std::size_t{4096},
                              std::size_t{8192}}) {
    const u64 p = generate_ntt_primes(50, n, 1)[0];
    const Ntt ntt(n, p);
    Rng rng(2);
    // A batch models the independent polynomials of a bulk transform (RNS
    // limbs x ciphertexts); larger than any thread count we sweep.
    std::vector<std::vector<u64>> batch(16, std::vector<u64>(n));
    for (auto& poly : batch) rng.fill_uniform_mod(poly, p);
    char label[32];
    std::snprintf(label, sizeof label, "n=%zu", n);
    run_bench("ntt_forward_batch16", label, threads, opt,
              [&] { ntt.forward_batch(batch); });
  }
}

void bench_he(HeFixture& f, const char* label, std::size_t threads,
              const Options& opt, bool with_ct_mult) {
  run_bench("encrypt", label, threads, opt,
            [&] { Ciphertext out = f.enc.encrypt(f.pt); (void)out; });
  run_bench("decrypt", label, threads, opt,
            [&] { Plaintext out = f.dec.decrypt(f.ct); (void)out; });
  run_bench("add", label, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.add_inplace(a, f.ct2);
  });
  run_bench("multiply_plain", label, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.multiply_plain_inplace(a, f.pt);
  });
  run_bench("rotate", label, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.rotate_rows_inplace(a, 1, f.gk);
  });
  if (with_ct_mult) {
    run_bench("ct_mult_relin", label, threads, opt, [&] {
      Ciphertext a = f.eval.multiply(f.ct, f.ct2);
      f.eval.relinearize_inplace(a, f.rk);
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  HeFixture test2048(HeProfile::kTest2048);
  HeFixture light4096(HeProfile::kLight4096);
  HeFixture prod8192(HeProfile::kProd8192);

  std::printf("hardware threads: %zu\n", hardware_threads());
  for (const std::size_t t : opt.threads) {
    set_num_threads(t);
    std::printf("--- threads = %zu ---\n", t);
    bench_ntt(t, opt);
    bench_he(test2048, "test2048", t, opt, /*with_ct_mult=*/true);
    bench_he(light4096, "light4096", t, opt, /*with_ct_mult=*/false);
    bench_he(prod8192, "prod8192", t, opt, /*with_ct_mult=*/true);
  }
  return 0;
}
