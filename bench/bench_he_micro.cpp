// HE substrate microbenchmarks: NTT, encryption, decryption, homomorphic
// add / plain-mult / rotation / ct-mult across the parameter profiles, swept
// over thread counts and NTT kernel sets.
//
// Usage:
//   bench_he_micro [--threads 1,2,4] [--kernel scalar,avx2] [--reps N]
//                  [--min-time SECONDS] [--json]
//
// Each measurement reports wall-clock seconds, aggregate process CPU
// seconds (so speedup-vs-threads and parallel efficiency are measurable),
// and throughput.  Machine-readable JSON lines (prefixed "JSON ") are
// emitted alongside the human table for the bench trajectory; --json
// suppresses the human-readable lines.  --kernel re-runs the suite once per
// kernel set (via the PRIMER_NTT_KERNEL override); every JSON line carries
// the kernel it ran on.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/timing.h"
#include "he/encoder.h"
#include "he/he.h"
#include "ntt/kernels.h"
#include "ntt/ntt.h"
#include "ntt/primes.h"

using namespace primer;

namespace {

struct Options {
  std::vector<std::size_t> threads;
  std::vector<std::string> kernels;  // empty -> automatic dispatch only
  int reps = 3;             // batch repetitions per timed sample
  double min_time = 0.05;   // seconds of sampling per benchmark
  bool json_only = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (bench::match_threads_flag(argc, argv, i, opt.threads)) {
      continue;
    } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string k = list.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (!k.empty()) opt.kernels.push_back(k);
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_only = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      opt.reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
      opt.min_time = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (opt.threads.empty()) opt.threads = {num_threads()};
  if (opt.reps < 1) opt.reps = 1;
  if (opt.min_time < 0.0) opt.min_time = 0.0;
  return opt;
}

// Runs `op` until min_time elapses; reports per-op wall/CPU seconds.
void run_bench(const char* name, const char* label, const char* kernel,
               std::size_t threads, const Options& opt,
               const std::function<void()>& op) {
  op();  // warm-up (twiddle caches, allocator)
  std::uint64_t iters = 0;
  CpuWallTimer timer;
  do {
    for (int r = 0; r < opt.reps; ++r) op();
    iters += static_cast<std::uint64_t>(opt.reps);
  } while (timer.wall_seconds() < opt.min_time);
  const double wall = timer.wall_seconds();
  const double cpu = timer.cpu_seconds();
  const double per_op = wall / static_cast<double>(iters);
  if (!opt.json_only) {
    std::printf(
        "%-24s %-10s kernel=%-6s threads=%zu %10.6fs/op %8.1f ops/s  "
        "cpu/wall=%4.2f\n",
        name, label, kernel, threads, per_op,
        per_op > 0 ? 1.0 / per_op : 0.0, wall > 0 ? cpu / wall : 0.0);
  }
  std::printf(
      "JSON {\"bench\":\"%s\",\"label\":\"%s\",\"kernel\":\"%s\","
      "\"threads\":%zu,\"iters\":%llu,\"wall_s\":%.6f,\"cpu_s\":%.6f,"
      "\"wall_s_per_op\":%.9f,\"ops_per_s\":%.3f}\n",
      name, label, kernel, threads, static_cast<unsigned long long>(iters),
      wall, cpu, per_op, per_op > 0 ? 1.0 / per_op : 0.0);
}

struct HeFixture {
  explicit HeFixture(HeProfile profile)
      : ctx(make_params(profile)),
        rng(1),
        keygen(ctx, rng),
        encoder(ctx),
        enc(ctx, keygen.secret_key(), rng),
        dec(ctx, keygen.secret_key()),
        eval(ctx),
        gk(keygen.make_galois_keys({1})),
        rk(keygen.make_relin_key()) {
    std::vector<u64> vals(encoder.slot_count());
    rng.fill_uniform_mod(vals, ctx.t());
    pt = encoder.encode(vals);
    ct = enc.encrypt(pt);
    ct2 = enc.encrypt(pt);
  }
  HeContext ctx;
  Rng rng;
  KeyGenerator keygen;
  BatchEncoder encoder;
  Encryptor enc;
  Decryptor dec;
  Evaluator eval;
  GaloisKeys gk;
  RelinKey rk;
  Plaintext pt;
  Ciphertext ct, ct2;
};

void bench_ntt(std::size_t threads, const Options& opt) {
  for (const std::size_t n : {std::size_t{2048}, std::size_t{4096},
                              std::size_t{8192}}) {
    const u64 p = generate_ntt_primes(50, n, 1)[0];
    const Ntt ntt(n, p);
    Rng rng(2);
    char label[32];
    std::snprintf(label, sizeof label, "n=%zu", n);

    // Single transform: the per-core kernel cost the AVX2 path targets.
    std::vector<u64> poly(n);
    rng.fill_uniform_mod(poly, p);
    run_bench("ntt_forward", label, ntt.kernel_name(), threads, opt,
              [&] { ntt.forward(poly.data()); });
    run_bench("ntt_inverse", label, ntt.kernel_name(), threads, opt,
              [&] { ntt.inverse(poly.data()); });

    // A batch models the independent polynomials of a bulk transform (RNS
    // limbs x ciphertexts); larger than any thread count we sweep.
    std::vector<std::vector<u64>> batch(16, std::vector<u64>(n));
    for (auto& b : batch) rng.fill_uniform_mod(b, p);
    run_bench("ntt_forward_batch16", label, ntt.kernel_name(), threads, opt,
              [&] { ntt.forward_batch(batch); });
  }
}

void bench_he(HeFixture& f, const char* label, std::size_t threads,
              const Options& opt, bool with_ct_mult) {
  const char* kernel = f.ctx.kernel_name();
  run_bench("encrypt", label, kernel, threads, opt,
            [&] { Ciphertext out = f.enc.encrypt(f.pt); (void)out; });
  run_bench("decrypt", label, kernel, threads, opt,
            [&] { Plaintext out = f.dec.decrypt(f.ct); (void)out; });
  run_bench("add", label, kernel, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.add_inplace(a, f.ct2);
  });
  run_bench("multiply_plain", label, kernel, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.multiply_plain_inplace(a, f.pt);
  });
  run_bench("multiply_plain_acc", label, kernel, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.multiply_plain_accumulate(a, f.ct2, f.pt);
  });
  run_bench("rotate", label, kernel, threads, opt, [&] {
    Ciphertext a = f.ct;
    f.eval.rotate_rows_inplace(a, 1, f.gk);
  });
  if (with_ct_mult) {
    run_bench("ct_mult_relin", label, kernel, threads, opt, [&] {
      Ciphertext a = f.eval.multiply(f.ct, f.ct2);
      f.eval.relinearize_inplace(a, f.rk);
    });
  }
}

void run_suite(const Options& opt) {
  HeFixture test2048(HeProfile::kTest2048);
  HeFixture light4096(HeProfile::kLight4096);
  HeFixture prod8192(HeProfile::kProd8192);

  for (const std::size_t t : opt.threads) {
    set_num_threads(t);
    if (!opt.json_only) std::printf("--- threads = %zu ---\n", t);
    bench_ntt(t, opt);
    bench_he(test2048, "test2048", t, opt, /*with_ct_mult=*/true);
    bench_he(light4096, "light4096", t, opt, /*with_ct_mult=*/false);
    bench_he(prod8192, "prod8192", t, opt, /*with_ct_mult=*/true);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  if (!opt.json_only) {
    std::printf("hardware threads: %zu\n", hardware_threads());
  }
  if (opt.kernels.empty()) {
    run_suite(opt);
    return 0;
  }
  for (const std::string& kernel : opt.kernels) {
    // The override is read at Ntt/HeContext construction, so each sweep
    // iteration rebuilds its fixtures under the requested kernel.
    ::setenv("PRIMER_NTT_KERNEL", kernel.c_str(), 1);
    if (!opt.json_only) {
      std::printf("=== kernel = %s ===\n", kernel.c_str());
    }
    run_suite(opt);
  }
  return 0;
}
