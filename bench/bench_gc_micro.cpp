// GC nonlinear-layer microbenchmarks: half-gates garbling and evaluation
// throughput (AND gates per second) over every fixed circuit the Primer
// protocols ship to the GC layer, swept over thread counts.
//
// Usage:
//   bench_gc_micro [--threads 1,2,4] [--reps N] [--min-time SECONDS] [--json]
//
// Two kernels are reported for each circuit:
//   batched — the production path: pipelined AES-NI batch hashing over
//             dependency levels, slice-parallel across the thread pool.
//   scalar  — the seed's serial single-block-AES reference
//             (garble_reference / eval_reference), the baseline the
//             >=3x single-thread throughput gate measures against.
// ops_per_s in the JSON lines is AND gates per second, so the bench
// trajectory gate tracks garbling throughput directly.
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timing.h"
#include "gc/fixed_circuit_suite.h"
#include "gc/garble.h"

using namespace primer;

namespace {

struct Options {
  std::vector<std::size_t> threads;
  int reps = 3;
  double min_time = 0.05;
  bool json_only = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (bench::match_threads_flag(argc, argv, i, opt.threads)) {
      continue;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_only = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      opt.reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
      opt.min_time = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (opt.threads.empty()) opt.threads = {num_threads()};
  if (opt.reps < 1) opt.reps = 1;
  if (opt.min_time < 0.0) opt.min_time = 0.0;
  return opt;
}

// Runs `op` until min_time elapses; each call to `op` completes
// `ops_per_iter` AND gates, so ops_per_s is gates per second.
void run_bench(const char* name, const std::string& label, const char* kernel,
               std::size_t threads, std::size_t ops_per_iter,
               const Options& opt, const std::function<void()>& op) {
  op();  // warm-up (circuit layering cache, allocator)
  std::uint64_t iters = 0;
  CpuWallTimer timer;
  do {
    for (int r = 0; r < opt.reps; ++r) op();
    iters += static_cast<std::uint64_t>(opt.reps);
  } while (timer.wall_seconds() < opt.min_time);
  const double wall = timer.wall_seconds();
  const double cpu = timer.cpu_seconds();
  const double total_ops =
      static_cast<double>(iters) * static_cast<double>(ops_per_iter);
  const double per_op = wall / total_ops;
  if (!opt.json_only) {
    std::printf(
        "%-14s %-10s kernel=%-8s threads=%zu %7zu ANDs %12.1f gates/s  "
        "cpu/wall=%4.2f\n",
        name, label.c_str(), kernel, threads, ops_per_iter,
        per_op > 0 ? 1.0 / per_op : 0.0, wall > 0 ? cpu / wall : 0.0);
  }
  std::printf(
      "JSON {\"bench\":\"%s\",\"label\":\"%s\",\"kernel\":\"%s\","
      "\"threads\":%zu,\"iters\":%llu,\"wall_s\":%.6f,\"cpu_s\":%.6f,"
      "\"wall_s_per_op\":%.9f,\"ops_per_s\":%.3f}\n",
      name, label.c_str(), kernel, threads,
      static_cast<unsigned long long>(iters), wall, cpu, per_op,
      per_op > 0 ? 1.0 / per_op : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const auto suite = fixed_circuit_suite();

  for (std::size_t ti = 0; ti < opt.threads.size(); ++ti) {
    const std::size_t n = opt.threads[ti];
    set_num_threads(n);
    for (const auto& [name, circ] : suite) {
      const std::size_t ands = circ.layers().and_count;
      if (ands == 0) continue;

      // Pre-garble once (fixed seed) so the eval benches measure evaluation
      // only; active labels come from random input bits.
      Rng grng(404);
      Garbler garbler(grng);
      const GarbledCircuit gc = garbler.garble(circ);
      Rng in_rng(505);
      std::vector<Label> active(static_cast<std::size_t>(circ.num_inputs));
      for (std::size_t i = 0; i < active.size(); ++i) {
        active[i] = Garbler::active_input(gc, i, in_rng.next() & 1);
      }

      run_bench("gc_garble", name, "batched", n, ands, opt, [&] {
        Rng rng(404);
        Garbler g(rng);
        (void)g.garble(circ);
      });
      run_bench("gc_eval", name, "batched", n, ands, opt, [&] {
        (void)GcEvaluator::eval(circ, gc.table, active);
      });

      // Reference serial paths: thread-independent, bench once.
      if (ti == 0) {
        run_bench("gc_garble_ref", name, "scalar", 1, ands, opt, [&] {
          Rng rng(404);
          (void)garble_reference(circ, rng);
        });
        run_bench("gc_eval_ref", name, "scalar", 1, ands, opt, [&] {
          (void)eval_reference(circ, gc.table, active);
        });
      }
    }
  }
  return 0;
}
