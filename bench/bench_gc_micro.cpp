// GC substrate microbenchmarks: fixed-key AES throughput, half-gates
// garbling and evaluation rates, and the AND-gate counts of the protocol
// circuits (softmax rows, activations, layernorm) that dominate Primer's
// GC cost.
#include <benchmark/benchmark.h>

#include "gc/aes.h"
#include "gc/fixed_circuits.h"
#include "gc/garble.h"

using namespace primer;

namespace {

void BM_AesHash(benchmark::State& state) {
  const FixedKeyAes aes;
  Block x{123, 456};
  std::uint64_t tweak = 0;
  for (auto _ : state) {
    x = aes.hash(x, ++tweak);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_AesHash);

Circuit make_mul_circuit(std::size_t w) {
  CircuitBuilder b;
  const Bus x = b.add_input_bus(w), y = b.add_input_bus(w);
  b.set_outputs(b.mul(x, y, w));
  return b.build();
}

void BM_GarbleMultiplier(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  const Circuit c = make_mul_circuit(w);
  Rng rng(5);
  Garbler g(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.garble(c));
  }
  state.counters["ANDs"] = static_cast<double>(c.and_count());
  state.counters["ns_per_AND"] = benchmark::Counter(
      static_cast<double>(c.and_count()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_GarbleMultiplier)->Arg(15)->Arg(32)->Arg(64);

void BM_EvalMultiplier(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  const Circuit c = make_mul_circuit(w);
  Rng rng(6);
  Garbler g(rng);
  const auto gc = g.garble(c);
  std::vector<Label> in(static_cast<std::size_t>(c.num_inputs));
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = Garbler::active_input(gc, i, (i & 1) != 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(GcEvaluator::eval(c, gc.table, in));
  }
  state.counters["ANDs"] = static_cast<double>(c.and_count());
}
BENCHMARK(BM_EvalMultiplier)->Arg(15)->Arg(32)->Arg(64);

void BM_GarbleSoftmaxRow(benchmark::State& state) {
  SoftmaxCircuitSpec spec;
  spec.t = (1ULL << 38) + 1;  // protocol share width
  spec.count = static_cast<std::size_t>(state.range(0));
  spec.frac_shift = 8;
  const Circuit c = make_softmax_circuit(spec);
  Rng rng(7);
  Garbler g(rng);
  for (auto _ : state) benchmark::DoNotOptimize(g.garble(c));
  state.counters["ANDs"] = static_cast<double>(c.and_count());
}
BENCHMARK(BM_GarbleSoftmaxRow)->Arg(4)->Arg(8)->Arg(30);

void BM_CircuitGateCounts(benchmark::State& state) {
  // Not a timing benchmark: reports the protocol circuit sizes (the GC-side
  // cost drivers) as counters for the record.
  const std::uint64_t t = (1ULL << 38) + 1;
  for (auto _ : state) {
    SoftmaxCircuitSpec sm;
    sm.t = t;
    sm.count = 30;
    sm.frac_shift = 8;
    ActivationCircuitSpec act;
    act.t = t;
    act.count = 1;
    act.frac_shift = 8;
    act.act = Activation::kGelu;
    LayerNormCircuitSpec ln;
    ln.t = t;
    ln.d = 64;
    ln.frac_shift = 8;
    ln.gamma.assign(64, 256);
    ln.beta.assign(64, 0);
    state.counters["softmax30_ANDs"] =
        static_cast<double>(make_softmax_circuit(sm).and_count());
    state.counters["gelu_ANDs_per_value"] =
        static_cast<double>(make_activation_circuit(act).and_count());
    state.counters["layernorm64_ANDs"] =
        static_cast<double>(make_layernorm_circuit(ln).and_count());
  }
}
BENCHMARK(BM_CircuitGateCounts)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
