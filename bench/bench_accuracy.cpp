// Accuracy experiment (supports the accuracy columns of Fig. 2 / Tables
// I-III): trains a classifier on a synthetic task (DESIGN.md §2 documents
// the GLUE substitution) and evaluates
//   float model            (plaintext upper bound)
//   fixed 15-bit + exact GC non-linearities   == Primer's arithmetic
//   THE-X-style polynomial approximations     == the FHE-only baseline
// The reproduction target is the ORDER and the GAP: Primer ~ float,
// THE-X several points below (paper: 84.6% vs 77.3% on MNLI-m).
#include <cstdio>

#include "nn/train.h"

using namespace primer;

int main() {
  std::printf("=== Accuracy: exact GC non-linearities vs THE-X polynomials "
              "===\n");
  std::printf("(synthetic 3-class task, frozen random Transformer body + "
              "trained linear head)\n\n");

  double sum_gap = 0;
  int runs = 0;
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    Rng rng(seed);
    auto weights = BertWeightsD::random(bert_micro(), rng);
    const auto report = train_and_evaluate(weights, /*train=*/300,
                                           /*test=*/200, /*epochs=*/30, rng);
    std::printf("seed %llu:\n", static_cast<unsigned long long>(seed));
    std::printf("  train accuracy (float)        : %5.1f%%\n",
                100 * report.train_accuracy);
    std::printf("  test  float                   : %5.1f%%\n",
                100 * report.float_accuracy);
    std::printf("  test  fixed 15-bit (Primer)   : %5.1f%%\n",
                100 * report.fixed_accuracy);
    std::printf("  test  THE-X approximations    : %5.1f%%\n",
                100 * report.thex_accuracy);
    sum_gap += report.fixed_accuracy - report.thex_accuracy;
    ++runs;
  }
  std::printf("\nMean (Primer - THE-X) accuracy gap: %+.1f points "
              "(paper: +7.3 points on MNLI-m)\n",
              100 * sum_gap / runs);
  std::printf("Primer keeps plaintext accuracy because SoftMax/GELU/LayerNorm "
              "run exactly in GC;\nTHE-X's polynomial surrogates lose "
              "accuracy, matching the paper's Fig. 2 ordering.\n");
  return 0;
}
