// Shared helpers for the bench executables' command-line handling.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/parallel.h"

namespace primer::bench {

// Parses a comma-separated list of thread counts ("1,2,4").  A "0" entry
// selects the hardware concurrency (matching set_num_threads(0)).  Returns
// false on an empty list or any non-numeric token.
inline bool parse_thread_list(const char* s, std::vector<std::size_t>& out) {
  out.clear();
  const char* p = s;
  while (*p != '\0') {
    char* endp = nullptr;
    const long v = std::strtol(p, &endp, 10);
    if (endp == p || v < 0 || (*endp != '\0' && *endp != ',')) return false;
    out.push_back(v == 0 ? hardware_threads() : static_cast<std::size_t>(v));
    p = (*endp == ',') ? endp + 1 : endp;
  }
  return !out.empty();
}

// Consumes a "--threads LIST" / "--threads=LIST" flag at argv[i], advancing
// i past a separate value.  Returns false if argv[i] is a different flag.
// A malformed list is a hard usage error (exit 2) — silently benching the
// wrong thread set would corrupt sweep trajectories.
inline bool match_threads_flag(int argc, char** argv, int& i,
                               std::vector<std::size_t>& out) {
  const char* val = nullptr;
  if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
    val = argv[++i];
  } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
    val = argv[i] + 10;
  } else {
    return false;
  }
  if (!parse_thread_list(val, out)) {
    std::fprintf(stderr, "invalid --threads list: %s\n", val);
    std::exit(2);
  }
  return true;
}

}  // namespace primer::bench
