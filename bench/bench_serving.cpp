// Serving-runtime benchmark: open-loop Poisson arrivals against a
// PrimerServer, measuring sustained session throughput and end-to-end
// latency percentiles (admission wait + service) under multi-tenant load.
//
// Open-loop means arrivals are scheduled by a Poisson clock calibrated to
// ~--rate x the measured capacity and submitted at those times regardless
// of completions — so the admission queue genuinely fills and the numbers
// include queueing, shedding and the per-client key-cache amortization
// (clients cycle through a fixed pool; repeat arrivals resume their cached
// session instead of re-paying key transfer).
//
// Output: the repo-standard JSON lines consumed by tools/compare_bench.py
// (bench names serving_throughput / serving_p50 / serving_p99, gated with
// --only serving against the committed bench/BENCH_serving.json snapshot).
//
//   ./bench_serving                    # 200 sessions, 4 workers, 25 clients
//   ./bench_serving --sessions 400 --workers 8 --rate 1.5 --proto
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/timing.h"
#include "nn/model.h"
#include "nn/train.h"
#include "serving/server.h"

namespace primer {
namespace {

struct Options {
  std::size_t sessions = 200;
  std::size_t workers = 4;
  std::size_t clients = 25;  // client-pool size; repeats hit the key cache
  double rate = 1.2;         // offered load as a multiple of capacity
  std::uint64_t seed = 1;
  bool proto = false;  // kProto2048 (paper profile) instead of kTest2048
  bool json_only = false;
};

Options parse(int argc, char** argv) {
  Options opt;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0) {
      opt.sessions = std::strtoull(need(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      opt.workers = std::strtoull(need(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      opt.clients = std::strtoull(need(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      opt.rate = std::strtod(need(i), nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(need(i), nullptr, 10);
    } else if (std::strcmp(argv[i], "--proto") == 0) {
      opt.proto = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_serving [--sessions N] [--workers N] "
                   "[--clients N] [--rate X] [--seed N] [--proto] [--json]\n");
      std::exit(2);
    }
  }
  if (opt.sessions == 0 || opt.workers == 0 || opt.clients == 0 ||
      opt.rate <= 0) {
    std::fprintf(stderr, "bench_serving: all knobs must be positive\n");
    std::exit(2);
  }
  return opt;
}

void emit(const char* bench, const char* label, const char* kernel,
          std::size_t threads, std::uint64_t iters, double wall_s,
          double cpu_s, double s_per_op) {
  std::printf(
      "JSON {\"bench\":\"%s\",\"label\":\"%s\",\"kernel\":\"%s\","
      "\"threads\":%zu,\"iters\":%llu,\"wall_s\":%.6f,\"cpu_s\":%.6f,"
      "\"wall_s_per_op\":%.9f,\"ops_per_s\":%.3f}\n",
      bench, label, kernel, threads,
      static_cast<unsigned long long>(iters), wall_s, cpu_s, s_per_op,
      s_per_op > 0 ? 1.0 / s_per_op : 0.0);
}

int run(const Options& opt) {
  Rng wrng(2025);
  ModelSpec spec;
  spec.weights = quantize(BertWeightsD::random(bert_nano(), wrng));
  spec.variant = PrimerVariant::kFP;
  spec.profile = opt.proto ? HeProfile::kProto2048 : HeProfile::kTest2048;
  const char* kernel = opt.proto ? "proto2048" : "test2048";

  ServerConfig cfg;
  cfg.workers = opt.workers;
  cfg.max_queue = 4 * opt.workers;  // bounded: overload sheds, not buffers
  cfg.policy = LoadShedPolicy::kRejectNewest;
  PrimerServer server({spec}, cfg);

  const std::vector<std::size_t> tokens = {3, 17, 9, 28};
  auto request = [&](std::uint64_t client) {
    InferenceRequest req;
    req.client_id = client;
    req.tokens = tokens;
    return req;
  };

  // Calibrate: two sequential sessions measure the service time (the second
  // also exercises the resume path the steady state will run on).
  Stopwatch calib;
  for (int i = 0; i < 2; ++i) {
    const SessionOutcome o = server.infer(request(1));
    if (o.status != SessionStatus::kCompleted) {
      std::fprintf(stderr, "calibration session failed: %s\n",
                   o.error.c_str());
      return 1;
    }
  }
  const double service_s = calib.seconds() / 2;
  // Effective parallel capacity: workers only pay off up to the core count.
  const std::size_t effective =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   opt.workers, hardware_threads()));
  const double lambda = opt.rate * static_cast<double>(effective) / service_s;

  if (!opt.json_only) {
    std::printf(
        "serving bench: %zu sessions, %zu workers, %zu clients, "
        "profile=%s, service=%.2fs, poisson rate=%.2f/s (x%.2f load)\n",
        opt.sessions, opt.workers, opt.clients, kernel, service_s, lambda,
        opt.rate);
  }

  // Open-loop Poisson schedule, fixed ahead of time for determinism.
  Rng arr(opt.seed);
  std::vector<double> arrive_s(opt.sessions);
  double t = 0;
  for (std::size_t i = 0; i < opt.sessions; ++i) {
    double u = arr.uniform_real();
    while (u >= 1.0) u = arr.uniform_real();
    t += -std::log(1.0 - u) / lambda;
    arrive_s[i] = t;
  }

  CpuWallTimer timer;
  Stopwatch clock;
  std::vector<std::shared_ptr<SessionTicket>> tickets;
  tickets.reserve(opt.sessions);
  std::uint64_t shed = 0, busy = 0;
  for (std::size_t i = 0; i < opt.sessions; ++i) {
    const double wait = arrive_s[i] - clock.seconds();
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
    // Open loop: a full queue sheds the arrival; the clock does not stop.
    std::string why;
    auto ticket = server.try_submit(request(1 + i % opt.clients), &why);
    if (ticket == nullptr) {
      ++shed;
    } else {
      tickets.push_back(std::move(ticket));
    }
  }
  for (const auto& ticket : tickets) {
    const SessionOutcome o = ticket->wait();
    if (o.status == SessionStatus::kRejected) {
      ++busy;  // client's previous request still in flight — open-loop cost
    } else if (o.status != SessionStatus::kCompleted) {
      std::fprintf(stderr, "session for client %llu resolved to %s: %s\n",
                   static_cast<unsigned long long>(o.client_id),
                   session_status_name(o.status), o.error.c_str());
      return 1;
    }
  }
  const double wall = clock.seconds();
  const double cpu = timer.cpu_seconds();

  const ServerStats stats = server.stats();
  const std::uint64_t completed = stats.completed - 2;  // minus calibration
  if (completed == 0 || stats.p50_latency_s <= 0 ||
      stats.p99_latency_s <= 0) {
    std::fprintf(stderr, "no completed sessions to report\n");
    return 1;
  }

  char label[128];
  std::snprintf(label, sizeof label, "nano w%zu c%zu x%.2f", opt.workers,
                opt.clients, opt.rate);
  if (!opt.json_only) {
    std::printf(
        "completed=%llu shed=%llu busy=%llu wall=%.1fs "
        "throughput=%.3f/s p50=%.2fs p99=%.2fs resumable_hits=%llu\n",
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(busy), wall,
        static_cast<double>(completed) / wall, stats.p50_latency_s,
        stats.p99_latency_s,
        static_cast<unsigned long long>(stats.sessions.resumable_hits));
  }
  emit("serving_throughput", label, kernel, opt.workers, completed, wall,
       cpu, wall / static_cast<double>(completed));
  emit("serving_p50", label, kernel, opt.workers, completed, wall, cpu,
       stats.p50_latency_s);
  emit("serving_p99", label, kernel, opt.workers, completed, wall, cpu,
       stats.p99_latency_s);
  return 0;
}

}  // namespace
}  // namespace primer

int main(int argc, char** argv) {
  return primer::run(primer::parse(argc, argv));
}
