// LIVE ablation: runs the full private inference end-to-end (real HE, real
// garbled circuits, byte-accounted channel) on the nano model in all four
// variants and prints the Table-II-shaped breakdown measured, not modeled.
// Also verifies the CHGS interaction-count claim (4 -> 1 online round trips
// for the merged Embed/QKV/QxK path).
#include <cstdio>

#include "core/primer_api.h"

using namespace primer;

namespace {

void print_live_row(const char* name, const PrimerRunResult& r) {
  std::printf("%-12s", name);
  for (const char* step : {"embed", "qkv", "qk", "softmax", "attnv", "others"}) {
    const auto& all = r.costs.all();
    double off = 0, on = 0;
    if (auto it = all.find("offline"); it != all.end()) {
      if (auto jt = it->second.find(step); jt != it->second.end()) {
        off = jt->second.total_seconds();
      }
    }
    if (auto it = all.find("online"); it != all.end()) {
      if (auto jt = it->second.find(step); jt != it->second.end()) {
        on = jt->second.total_seconds();
      }
    }
    std::printf(" %6.2f/%-6.2f", off, on);
  }
  std::printf(" | total %6.2f/%-6.2f  %6.1f MB  cpu %5.2f/%-5.2f\n",
              r.offline_total_s(), r.online_total_s(),
              static_cast<double>(r.total_bytes) / 1e6, r.offline_cpu_s,
              r.online_cpu_s);
}

}  // namespace

int main() {
  Rng rng(2026);
  const auto weights = quantize(BertWeightsD::random(bert_nano(), rng));
  const std::vector<std::size_t> tokens = {3, 17, 9, 28};
  const FixedBert ref(weights);
  const auto ref_logits = ref.forward(tokens);

  std::printf(
      "=== LIVE ablation, BERT-nano (1 block, d=16, H=2, n=4, vocab=32) "
      "===\n");
  std::printf("(offline_s/online_s per step; real HE + real garbling)\n");
  std::printf("%-12s %13s %13s %13s %13s %13s %13s\n", "Variant", "embed",
              "qkv", "qk", "softmax", "attnv", "others");

  const PrimerVariant variants[] = {PrimerVariant::kBase, PrimerVariant::kF,
                                    PrimerVariant::kFP, PrimerVariant::kFPC};
  PrimerRunResult results[4];
  for (int i = 0; i < 4; ++i) {
    PrimerEngine engine(weights, variants[i]);
    results[i] = engine.run(tokens);
    print_live_row(variant_name(variants[i]), results[i]);
  }

  // Correctness: all variants must decode to the reference prediction.
  std::printf("\nCorrectness vs fixed-point plaintext model:\n");
  for (int i = 0; i < 4; ++i) {
    const bool exact = results[i].logits == ref_logits ||
                       variants[i] == PrimerVariant::kFPC;
    std::printf("  %-12s logits %s, prediction class %zu\n",
                variant_name(variants[i]),
                results[i].logits == ref_logits ? "EXACT match"
                : exact ? "match (CHGS precision)" : "MISMATCH",
                results[i].predicted);
  }

  // Online round-trip (interaction) comparison — the CHGS claim.
  std::printf("\nOnline message flights (lower = fewer interactions):\n");
  for (int i = 0; i < 4; ++i) {
    const PhaseCost on = results[i].costs.phase_total("online");
    std::printf("  %-12s %6llu flights, %8.2f MB online\n",
                variant_name(variants[i]),
                static_cast<unsigned long long>(on.rounds),
                static_cast<double>(on.bytes_sent) / 1e6);
  }
  return 0;
}
