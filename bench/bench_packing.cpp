// Reproduces the Fig. 6 design claim: tokens-first packing cuts homomorphic
// rotations by a factor ~n versus feature-based packing.  Reports both the
// count model at BERT dimensions and LIVE encrypted matmuls (real rotations,
// real wall time) at reduced dimensions.
#include <cstdio>

#include "common/timing.h"
#include "proto/packing.h"
#include "ss/secret_share.h"

using namespace primer;

int main() {
  // ---- count model at paper dimensions -----------------------------------
  std::printf("=== Rotation counts (model, M = 4096 slots) ===\n");
  std::printf("%-32s %14s %14s %8s\n", "matmul shape", "feature-based",
              "tokens-first", "ratio");
  struct Case {
    const char* name;
    std::size_t n, din, dout;
  };
  const Case cases[] = {
      {"embedding 30x30522 -> 768", 30, 30522, 768},
      {"QKV 30x768 -> 768", 30, 768, 768},
      {"FFN 30x768 -> 3072", 30, 768, 3072},
      {"classifier 1x768 -> 3", 1, 768, 3},
  };
  for (const auto& c : cases) {
    const auto fb = packed_matmul_counts(PackingStrategy::kFeatureBased, c.n,
                                         c.din, c.dout, 4096);
    const auto tf = packed_matmul_counts(PackingStrategy::kTokensFirst, c.n,
                                         c.din, c.dout, 4096);
    std::printf("%-32s %14llu %14llu %7.1fx\n", c.name,
                static_cast<unsigned long long>(fb.rotations),
                static_cast<unsigned long long>(tf.rotations),
                static_cast<double>(fb.rotations) /
                    static_cast<double>(std::max<std::uint64_t>(1, tf.rotations)));
  }

  // ---- live encrypted matmuls ---------------------------------------------
  std::printf("\n=== Live encrypted matmul (kProto2048, micro shapes) ===\n");
  HeContext ctx(make_params(HeProfile::kProto2048));
  Rng rng(3);
  KeyGenerator keygen(ctx, rng);
  BatchEncoder encoder(ctx);
  Encryptor enc(ctx, keygen.secret_key(), rng);
  Decryptor dec(ctx, keygen.secret_key());
  Evaluator eval(ctx);
  const auto gk = keygen.make_galois_keys({1, 8});
  const ShareRing ring(ctx.t());

  std::printf("%-16s %10s %10s %12s\n", "strategy", "rotations", "mults",
              "seconds");
  for (const auto strategy :
       {PackingStrategy::kFeatureBased, PackingStrategy::kTokensFirst}) {
    const MatI x = ring.random(rng, 8, 64);
    const MatI w = random_fp_matrix(rng, 64, 16, -1.0, 1.0);
    PackedMatmul mm(ctx, encoder, eval, strategy);
    const auto packed = mm.encrypt_input(x, enc);
    PackedMatmulStats stats;
    Stopwatch sw;
    const auto result = mm.multiply(packed, w, 8, ctx.t(), gk, &stats);
    const double secs = sw.seconds();
    (void)mm.decrypt_result(result, dec, 8, 16);
    std::printf("%-16s %10llu %10llu %11.3fs\n",
                strategy == PackingStrategy::kTokensFirst ? "tokens-first"
                                                          : "feature-based",
                static_cast<unsigned long long>(stats.rotations),
                static_cast<unsigned long long>(stats.plain_mults), secs);
  }
  return 0;
}
