// Reproduces the Fig. 6 design claim: tokens-first packing cuts homomorphic
// rotations by a factor ~n versus feature-based packing.  Reports both the
// count model at BERT dimensions and LIVE encrypted matmuls (real rotations,
// real wall time) at reduced dimensions, swept over thread counts.
//
// Usage: bench_packing [--threads 1,2,4]
//
// Live runs report wall-clock and aggregate process-CPU seconds so the
// speedup-vs-threads of the parallel execution layer is measurable; JSON
// lines (prefixed "JSON ") carry the same data machine-readably.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/timing.h"
#include "proto/packing.h"
#include "ss/secret_share.h"

using namespace primer;

int main(int argc, char** argv) {
  std::vector<std::size_t> threads;
  for (int i = 1; i < argc; ++i) {
    if (!bench::match_threads_flag(argc, argv, i, threads)) {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (threads.empty()) threads = {num_threads()};

  // ---- count model at paper dimensions -----------------------------------
  std::printf("=== Rotation counts (model, M = 4096 slots) ===\n");
  std::printf("%-32s %14s %14s %8s\n", "matmul shape", "feature-based",
              "tokens-first", "ratio");
  struct Case {
    const char* name;
    std::size_t n, din, dout;
  };
  const Case cases[] = {
      {"embedding 30x30522 -> 768", 30, 30522, 768},
      {"QKV 30x768 -> 768", 30, 768, 768},
      {"FFN 30x768 -> 3072", 30, 768, 3072},
      {"classifier 1x768 -> 3", 1, 768, 3},
  };
  for (const auto& c : cases) {
    const auto fb = packed_matmul_counts(PackingStrategy::kFeatureBased, c.n,
                                         c.din, c.dout, 4096);
    const auto tf = packed_matmul_counts(PackingStrategy::kTokensFirst, c.n,
                                         c.din, c.dout, 4096);
    std::printf("%-32s %14llu %14llu %7.1fx\n", c.name,
                static_cast<unsigned long long>(fb.rotations),
                static_cast<unsigned long long>(tf.rotations),
                static_cast<double>(fb.rotations) /
                    static_cast<double>(std::max<std::uint64_t>(1, tf.rotations)));
  }

  // ---- live encrypted matmuls ---------------------------------------------
  std::printf("\n=== Live encrypted matmul (kProto2048, micro shapes) ===\n");
  HeContext ctx(make_params(HeProfile::kProto2048));
  Rng rng(3);
  KeyGenerator keygen(ctx, rng);
  BatchEncoder encoder(ctx);
  Encryptor enc(ctx, keygen.secret_key(), rng);
  Decryptor dec(ctx, keygen.secret_key());
  Evaluator eval(ctx);
  std::vector<int> gk_steps;
  for (const auto strategy :
       {PackingStrategy::kFeatureBased, PackingStrategy::kTokensFirst}) {
    const PackedMatmul mm(ctx, encoder, eval, strategy);
    for (const int s : mm.rotation_steps(8)) gk_steps.push_back(s);
  }
  const auto gk = keygen.make_galois_keys(gk_steps);
  const ShareRing ring(ctx.t());

  std::printf("%-16s %8s %10s %10s %10s %10s %9s\n", "strategy", "threads",
              "rotations", "mults", "wall_s", "cpu_s", "cpu/wall");
  for (const std::size_t nthreads : threads) {
    set_num_threads(nthreads);
    for (const auto strategy :
         {PackingStrategy::kFeatureBased, PackingStrategy::kTokensFirst}) {
      // Fresh deterministic inputs per run: sampling stays on this thread.
      Rng data_rng(7);
      const MatI x = ring.random(data_rng, 8, 64);
      const MatI w = random_fp_matrix(data_rng, 64, 16, -1.0, 1.0);
      PackedMatmul mm(ctx, encoder, eval, strategy);
      const auto packed = mm.encrypt_input(x, enc);
      PackedMatmulStats stats;
      CpuWallTimer timer;
      const auto result = mm.multiply(packed, w, 8, ctx.t(), gk, &stats);
      const double wall = timer.wall_seconds();
      const double cpu = timer.cpu_seconds();
      (void)mm.decrypt_result(result, dec, 8, 16);
      const char* name = strategy == PackingStrategy::kTokensFirst
                             ? "tokens-first"
                             : "feature-based";
      std::printf("%-16s %8zu %10llu %10llu %9.3fs %9.3fs %8.2f\n", name,
                  nthreads, static_cast<unsigned long long>(stats.rotations),
                  static_cast<unsigned long long>(stats.plain_mults), wall,
                  cpu, wall > 0 ? cpu / wall : 0.0);
      std::printf(
          "JSON {\"bench\":\"packed_matmul\",\"strategy\":\"%s\","
          "\"threads\":%zu,\"rotations\":%llu,\"plain_mults\":%llu,"
          "\"wall_s\":%.6f,\"cpu_s\":%.6f}\n",
          name, nthreads, static_cast<unsigned long long>(stats.rotations),
          static_cast<unsigned long long>(stats.plain_mults), wall, cpu);
    }
  }
  return 0;
}
