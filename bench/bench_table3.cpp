// Reproduces Table III: Primer (Primer-FPC) across the BERT model zoo —
// offline/online latency, throughput (tokens/s) and total message size (GB),
// with the paper's reported accuracies for reference (GLUE/SQuAD data is not
// available offline; see DESIGN.md §2 and bench_accuracy for the measured
// synthetic-task accuracy deltas).
#include <cstdio>

#include "proto/cost_model.h"

using namespace primer;

int main() {
  std::printf("Calibrating primitives...\n");
  const PrimitiveCosts pc = PrimitiveCosts::measure();

  struct PaperRow {
    double mnli, offline, online, tput, gb;
  };
  // Paper Table III reference values (MNLI-m accuracy, latency, throughput,
  // message GB).
  const PaperRow paper[] = {{77.6, 318.5, 10.6, 2.83, 0.9},
                            {81.6, 345.2, 18.9, 1.59, 1.8},
                            {84.6, 399.4, 35.4, 0.85, 3.6},
                            {85.4, 452.8, 45.1, 0.67, 3.9},
                            {86.6, 586.4, 91.6, 0.33, 7.9}};

  std::printf("\n=== Table III: Primer across BERT models ===\n");
  std::printf("%-12s %3s %5s %3s %3s | %10s %10s %9s %8s | %s\n", "Model", "N",
              "d", "H", "n", "offline(s)", "online(s)", "tokens/s", "msg GB",
              "paper(off/on/tput/GB, acc%)");
  const auto zoo = bert_zoo();
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    const auto& cfg = zoo[i];
    const ModelEstimate e = estimate_cost(cfg, CostedScheme::kPrimerFPC, pc);
    std::printf(
        "%-12s %3zu %5zu %3zu %3zu | %10.1f %10.1f %9.2f %8.2f | "
        "%.0f/%.0f/%.2f/%.1f, %.1f%%\n",
        cfg.name.c_str(), cfg.blocks, cfg.d_model, cfg.heads, cfg.tokens,
        e.offline_seconds(), e.online_seconds(), e.throughput_tokens_per_s(),
        e.message_gb(), paper[i].offline, paper[i].online, paper[i].tput,
        paper[i].gb, paper[i].mnli);
  }

  // Scaling claims from the paper's text.
  const auto tiny = estimate_cost(zoo[0], CostedScheme::kPrimerFPC, pc);
  const auto small = estimate_cost(zoo[1], CostedScheme::kPrimerFPC, pc);
  const auto base = estimate_cost(zoo[2], CostedScheme::kPrimerFPC, pc);
  const auto large = estimate_cost(zoo[4], CostedScheme::kPrimerFPC, pc);
  std::printf("\nScaling checks (paper in parentheses):\n");
  std::printf("  small vs tiny online latency : +%5.1f%%  (+78.3%%)\n",
              100.0 * (small.online_seconds() / tiny.online_seconds() - 1.0));
  std::printf("  base vs tiny online latency  : +%5.1f%%  (+230%%)\n",
              100.0 * (base.online_seconds() / tiny.online_seconds() - 1.0));
  std::printf("  base vs tiny message size    : %5.2fx   (4.0x)\n",
              base.message_gb() / tiny.message_gb());
  std::printf("  large vs tiny message size   : %5.2fx   (8.8x)\n",
              large.message_gb() / tiny.message_gb());
  return 0;
}
